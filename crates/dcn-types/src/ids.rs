//! Identifiers for fabric endpoints and virtual output queues.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a server (equivalently, a port of the paper's "one big
/// switch" abstraction — each port of the non-blocking input-queued switch
/// represents one server).
///
/// # Example
///
/// ```
/// use dcn_types::HostId;
/// let h = HostId::new(42);
/// assert_eq!(h.index(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HostId(u32);

impl HostId {
    /// Creates a host identifier from its zero-based index.
    pub const fn new(index: u32) -> Self {
        HostId(index)
    }

    /// Returns the zero-based index of this host.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for slice indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u32> for HostId {
    fn from(index: u32) -> Self {
        HostId(index)
    }
}

/// Identifier of a rack (a top-of-rack switch and the hosts below it).
///
/// The paper's topology has 12 racks of 12 hosts each.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RackId(u32);

impl RackId {
    /// Creates a rack identifier from its zero-based index.
    pub const fn new(index: u32) -> Self {
        RackId(index)
    }

    /// Returns the zero-based index of this rack.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for slice indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

impl From<u32> for RackId {
    fn from(index: u32) -> Self {
        RackId(index)
    }
}

/// A virtual output queue: the queue at ingress port `src` holding flows
/// destined for egress port `dst` (the paper's `q_ij`).
///
/// In a fabric of `N` servers there are `N^2` VOQs. The backlog of a VOQ is
/// the quantity the backlog-aware schedulers subtract from the (scaled)
/// remaining flow size when ranking flows.
///
/// # Example
///
/// ```
/// use dcn_types::{HostId, Voq};
/// let q = Voq::new(HostId::new(1), HostId::new(2));
/// assert_ne!(q, q.reversed());
/// assert_eq!(q.reversed().reversed(), q);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Voq {
    src: HostId,
    dst: HostId,
}

impl Voq {
    /// Creates the VOQ for flows entering at `src` and destined for `dst`.
    pub const fn new(src: HostId, dst: HostId) -> Self {
        Voq { src, dst }
    }

    /// The ingress port (source server) of this VOQ.
    pub const fn src(self) -> HostId {
        self.src
    }

    /// The egress port (destination server) of this VOQ.
    pub const fn dst(self) -> HostId {
        self.dst
    }

    /// The VOQ of the reverse direction (`q_ji` for this `q_ij`).
    pub const fn reversed(self) -> Self {
        Voq {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Whether this VOQ loops a host back to itself. Self-loops never occur
    /// in generated workloads but may appear in hand-built scenarios.
    pub fn is_self_loop(self) -> bool {
        self.src == self.dst
    }
}

impl fmt::Display for Voq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q[{},{}]", self.src.index(), self.dst.index())
    }
}

/// Identifier of one core plane of a multi-path fabric.
///
/// A k-ary fat-tree has `k/2` independent core planes; ECMP-style routing
/// hashes each inter-rack flow onto one of them, and replication schemes
/// (RepFlow) send copies of a flow down *distinct* planes.
///
/// # Example
///
/// ```
/// use dcn_types::PlaneId;
/// let p = PlaneId::new(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "plane2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PlaneId(u32);

impl PlaneId {
    /// Creates a plane identifier from its zero-based index.
    pub const fn new(index: u32) -> Self {
        PlaneId(index)
    }

    /// Returns the zero-based index of this plane.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for slice indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plane{}", self.0)
    }
}

impl From<u32> for PlaneId {
    fn from(index: u32) -> Self {
        PlaneId(index)
    }
}

/// Identifier of one copy of a replicated flow: the flow plus the core
/// plane the copy rides.
///
/// The copy on the flow's ECMP-assigned plane is its *primary*; copies on
/// every other plane are replicas racing it (first copy to finish wins).
///
/// # Example
///
/// ```
/// use dcn_types::{FlowId, PlaneId, ReplicaId};
/// let r = ReplicaId::new(FlowId::new(7), PlaneId::new(1));
/// assert_eq!(r.flow(), FlowId::new(7));
/// assert_eq!(r.plane(), PlaneId::new(1));
/// assert_eq!(r.to_string(), "f7@plane1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId {
    flow: crate::FlowId,
    plane: PlaneId,
}

impl ReplicaId {
    /// Creates the identifier of `flow`'s copy on `plane`.
    pub const fn new(flow: crate::FlowId, plane: PlaneId) -> Self {
        ReplicaId { flow, plane }
    }

    /// The replicated flow.
    pub const fn flow(self) -> crate::FlowId {
        self.flow
    }

    /// The core plane this copy rides.
    pub const fn plane(self) -> PlaneId {
        self.plane
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.flow, self.plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_id_roundtrip() {
        let h = HostId::new(17);
        assert_eq!(h.index(), 17);
        assert_eq!(h.as_usize(), 17);
        assert_eq!(HostId::from(17), h);
        assert_eq!(h.to_string(), "h17");
    }

    #[test]
    fn rack_id_roundtrip() {
        let r = RackId::new(3);
        assert_eq!(r.index(), 3);
        assert_eq!(r.to_string(), "rack3");
        assert_eq!(RackId::from(3), r);
    }

    #[test]
    fn voq_accessors_and_reverse() {
        let q = Voq::new(HostId::new(1), HostId::new(2));
        assert_eq!(q.src(), HostId::new(1));
        assert_eq!(q.dst(), HostId::new(2));
        assert_eq!(q.reversed(), Voq::new(HostId::new(2), HostId::new(1)));
        assert!(!q.is_self_loop());
        assert!(Voq::new(HostId::new(5), HostId::new(5)).is_self_loop());
    }

    #[test]
    fn voq_ordering_is_lexicographic() {
        let a = Voq::new(HostId::new(0), HostId::new(9));
        let b = Voq::new(HostId::new(1), HostId::new(0));
        assert!(a < b);
    }

    #[test]
    fn display_voq() {
        let q = Voq::new(HostId::new(4), HostId::new(7));
        assert_eq!(q.to_string(), "q[4,7]");
    }

    #[test]
    fn plane_id_roundtrip() {
        let p = PlaneId::new(2);
        assert_eq!(p.index(), 2);
        assert_eq!(p.as_usize(), 2);
        assert_eq!(PlaneId::from(2), p);
        assert_eq!(p.to_string(), "plane2");
    }

    #[test]
    fn replica_id_accessors() {
        let r = ReplicaId::new(crate::FlowId::new(9), PlaneId::new(0));
        assert_eq!(r.flow(), crate::FlowId::new(9));
        assert_eq!(r.plane(), PlaneId::new(0));
        assert_eq!(r.to_string(), "f9@plane0");
        // Ordering is (flow, plane) lexicographic — the deterministic
        // replica-processing order of the fabric engine.
        let earlier = ReplicaId::new(crate::FlowId::new(8), PlaneId::new(3));
        assert!(earlier < r);
    }
}
