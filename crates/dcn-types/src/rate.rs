//! Link and flow rates.

use crate::{Bytes, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul};

/// A transmission rate, stored internally in bytes per second.
///
/// The paper's fabric uses 10 Gbps edge links and 40 Gbps core links;
/// construct those with [`Rate::from_gbps`]. A [`Rate`] is always finite and
/// non-negative — the constructors panic on NaN or negative input so that
/// schedule math downstream never has to re-validate.
///
/// # Example
///
/// ```
/// use dcn_types::{Bytes, Rate};
/// let edge = Rate::from_gbps(10.0);
/// assert_eq!(edge.bytes_per_sec(), 1.25e9);
/// let t = edge.transfer_time(Bytes::from_mb(1));
/// assert!((t.as_secs() - 8.0e-4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Rate(f64);

impl Rate {
    /// Zero rate (an unscheduled flow).
    pub const ZERO: Rate = Rate(0.0);

    /// Creates a rate from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is negative or not finite.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec >= 0.0,
            "rate must be finite and non-negative, got {bytes_per_sec}"
        );
        Rate(bytes_per_sec)
    }

    /// Creates a rate from gigabits per second (decimal: 1 Gbps = 1.25e8 B/s).
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is negative or not finite.
    pub fn from_gbps(gbps: f64) -> Self {
        Rate::from_bytes_per_sec(gbps * 1e9 / 8.0)
    }

    /// The rate in bytes per second.
    pub const fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// The rate in gigabits per second.
    pub fn gbps(self) -> f64 {
        self.0 * 8.0 / 1e9
    }

    /// Whether this rate is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Time to transfer `bytes` at this rate.
    ///
    /// Returns [`SimTime::INFINITY`] for a zero rate and a non-zero size, and
    /// [`SimTime::ZERO`] for a zero size.
    pub fn transfer_time(self, bytes: Bytes) -> SimTime {
        if bytes.is_zero() {
            SimTime::ZERO
        } else if self.is_zero() {
            SimTime::INFINITY
        } else {
            SimTime::from_secs(bytes.as_f64() / self.0)
        }
    }

    /// Bytes transferred at this rate during `elapsed`, truncated to whole
    /// bytes.
    ///
    /// This is the **only** rate×time→bytes conversion in the workspace:
    /// every consumer (the fabric engine's drain accounting included) must
    /// route through it so truncation behaves identically everywhere. The
    /// fabric engine anchors the conversion at each flow's drain epoch and
    /// takes differences of this monotone integer target, so the single
    /// floor here never accumulates across events; completion instants are
    /// derived analytically via [`Rate::transfer_time`], never from
    /// repeated `bytes_in` calls.
    pub fn bytes_in(self, elapsed: SimTime) -> Bytes {
        Bytes::new((self.0 * elapsed.as_secs()).floor().max(0.0) as u64)
    }

    /// The smaller of two rates.
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    /// Scales the rate; the factor must be non-negative and finite.
    fn mul(self, rhs: f64) -> Rate {
        Rate::from_bytes_per_sec(self.0 * rhs)
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    /// Divides the rate; the divisor must be positive and finite.
    fn div(self, rhs: f64) -> Rate {
        Rate::from_bytes_per_sec(self.0 / rhs)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} Gbps", self.gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_roundtrip() {
        let r = Rate::from_gbps(10.0);
        assert!((r.gbps() - 10.0).abs() < 1e-12);
        assert_eq!(r.bytes_per_sec(), 1.25e9);
    }

    #[test]
    fn transfer_time_basics() {
        let r = Rate::from_gbps(10.0);
        let t = r.transfer_time(Bytes::from_kb(20));
        assert!((t.as_secs() - 20_000.0 / 1.25e9).abs() < 1e-15);
        assert_eq!(Rate::ZERO.transfer_time(Bytes::new(1)), SimTime::INFINITY);
        assert_eq!(r.transfer_time(Bytes::ZERO), SimTime::ZERO);
    }

    #[test]
    fn bytes_in_elapsed() {
        let r = Rate::from_bytes_per_sec(1000.0);
        assert_eq!(r.bytes_in(SimTime::from_secs(2.5)), Bytes::new(2500));
        assert_eq!(Rate::ZERO.bytes_in(SimTime::from_secs(5.0)), Bytes::ZERO);
    }

    #[test]
    fn arithmetic() {
        let r = Rate::from_gbps(10.0) + Rate::from_gbps(30.0);
        assert!((r.gbps() - 40.0).abs() < 1e-9);
        assert!(((Rate::from_gbps(10.0) * 0.5).gbps() - 5.0).abs() < 1e-9);
        assert!(((Rate::from_gbps(10.0) / 2.0).gbps() - 5.0).abs() < 1e-9);
        assert_eq!(
            Rate::from_gbps(10.0).min(Rate::from_gbps(40.0)),
            Rate::from_gbps(10.0)
        );
    }

    #[test]
    #[should_panic(expected = "rate must be finite")]
    fn negative_rate_panics() {
        let _ = Rate::from_bytes_per_sec(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(Rate::from_gbps(10.0).to_string(), "10.000 Gbps");
    }
}
