//! Dense port bitsets.

use crate::HostId;
use std::fmt;

/// A set of ports (servers) backed by a dense bitmap.
///
/// Ports of the "one big switch" abstraction are small zero-based integers
/// ([`HostId::index`]), so a word-packed bitmap answers membership in `O(1)`
/// with no per-element allocation — the schedulers' greedy admission loop
/// tests both ports of every candidate VOQ against two of these. The set
/// grows on demand to the largest inserted index; all operations on indices
/// beyond the current capacity behave as if the bit were zero.
///
/// # Example
///
/// ```
/// use dcn_types::{HostId, PortSet};
///
/// let mut busy = PortSet::new();
/// assert!(busy.insert(HostId::new(3)));
/// assert!(!busy.insert(HostId::new(3))); // already present
/// assert!(busy.contains(HostId::new(3)));
/// assert!(!busy.contains(HostId::new(144)));
/// assert_eq!(busy.len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct PortSet {
    words: Vec<u64>,
    len: usize,
}

impl PortSet {
    /// Creates an empty set. No memory is allocated until the first insert.
    pub fn new() -> Self {
        PortSet::default()
    }

    /// Creates an empty set pre-sized for ports `0..num_ports`, so inserts
    /// within that range never reallocate.
    pub fn with_ports(num_ports: u32) -> Self {
        PortSet {
            words: vec![0; (num_ports as usize).div_ceil(64)],
            len: 0,
        }
    }

    #[inline]
    fn split(port: HostId) -> (usize, u64) {
        let i = port.as_usize();
        (i / 64, 1u64 << (i % 64))
    }

    /// Number of ports in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds no ports.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `port` is in the set.
    #[inline]
    pub fn contains(&self, port: HostId) -> bool {
        let (word, bit) = Self::split(port);
        self.words.get(word).is_some_and(|w| w & bit != 0)
    }

    /// Inserts `port`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, port: HostId) -> bool {
        let (word, bit) = Self::split(port);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let w = &mut self.words[word];
        let fresh = *w & bit == 0;
        *w |= bit;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `port`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, port: HostId) -> bool {
        let (word, bit) = Self::split(port);
        match self.words.get_mut(word) {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Empties the set, keeping its capacity for reuse.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates over the ports in the set in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = HostId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| HostId::new((i * 64 + b) as u32))
        })
    }
}

/// Sets are equal when they hold the same ports — capacity (trailing zero
/// words left behind by [`PortSet::remove`]/[`PortSet::clear`]) is ignored.
impl PartialEq for PortSet {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        self.len == other.len
            && short.iter().zip(long.iter()).all(|(a, b)| a == b)
            && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for PortSet {}

impl fmt::Debug for PortSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<HostId> for PortSet {
    fn from_iter<I: IntoIterator<Item = HostId>>(iter: I) -> Self {
        let mut set = PortSet::new();
        for port in iter {
            set.insert(port);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = PortSet::new();
        assert!(s.is_empty());
        assert!(s.insert(HostId::new(0)));
        assert!(s.insert(HostId::new(63)));
        assert!(s.insert(HostId::new(64)));
        assert!(!s.insert(HostId::new(64)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(HostId::new(63)));
        assert!(!s.contains(HostId::new(1)));
        assert!(!s.contains(HostId::new(1_000_000)));
        assert!(s.remove(HostId::new(63)));
        assert!(!s.remove(HostId::new(63)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clear_keeps_capacity_and_equality_ignores_it() {
        let mut a = PortSet::new();
        a.insert(HostId::new(200));
        a.clear();
        let b = PortSet::new();
        assert_eq!(a, b);
        a.insert(HostId::new(3));
        let mut c = PortSet::new();
        c.insert(HostId::new(3));
        assert_eq!(a, c);
        c.insert(HostId::new(4));
        assert_ne!(a, c);
    }

    #[test]
    fn iterates_in_port_order() {
        let s: PortSet = [70u32, 3, 64, 3].into_iter().map(HostId::new).collect();
        let ports: Vec<u32> = s.iter().map(HostId::index).collect();
        assert_eq!(ports, vec![3, 64, 70]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn with_ports_presizes() {
        let mut s = PortSet::with_ports(144);
        assert!(s.is_empty());
        assert!(s.insert(HostId::new(143)));
        assert!(s.contains(HostId::new(143)));
    }
}
