//! Byte quantities.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A non-negative quantity of bytes (flow sizes, queue backlogs, delivered
/// volume).
///
/// Arithmetic is saturating on subtraction so that draining a queue below
/// zero clamps at empty instead of wrapping — exactly the `L_ij(t)`
/// rectification term in the paper's queue-evolution equation (1).
///
/// # Example
///
/// ```
/// use dcn_types::Bytes;
/// let q = Bytes::from_kb(20);
/// assert_eq!(q.as_u64(), 20_000);
/// assert_eq!(q - Bytes::from_mb(1), Bytes::ZERO); // saturates
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a quantity from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a quantity of `kb` kilobytes (1 KB = 1000 B, matching the
    /// decimal convention of link rates).
    pub const fn from_kb(kb: u64) -> Self {
        Bytes(kb * 1_000)
    }

    /// Creates a quantity of `mb` megabytes (1 MB = 10^6 B).
    pub const fn from_mb(mb: u64) -> Self {
        Bytes(mb * 1_000_000)
    }

    /// Creates a quantity of `gb` gigabytes (1 GB = 10^9 B).
    pub const fn from_gb(gb: u64) -> Self {
        Bytes(gb * 1_000_000_000)
    }

    /// Returns the raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the byte count as `f64`, for rate and statistics math.
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Whether this quantity is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two quantities.
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// The larger of two quantities.
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    /// Saturating: clamps at [`Bytes::ZERO`].
    fn sub(self, rhs: Bytes) -> Bytes {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl From<u64> for Bytes {
    fn from(bytes: u64) -> Self {
        Bytes(bytes)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2} GB", b / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2} MB", b / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2} KB", b / 1e3)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Bytes::from_kb(1).as_u64(), 1_000);
        assert_eq!(Bytes::from_mb(2).as_u64(), 2_000_000);
        assert_eq!(Bytes::from_gb(3).as_u64(), 3_000_000_000);
        assert_eq!(Bytes::new(7).as_u64(), 7);
        assert_eq!(Bytes::from(9u64), Bytes::new(9));
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(Bytes::new(5) - Bytes::new(9), Bytes::ZERO);
        let mut b = Bytes::new(5);
        b -= Bytes::new(2);
        assert_eq!(b, Bytes::new(3));
        b -= Bytes::new(100);
        assert_eq!(b, Bytes::ZERO);
    }

    #[test]
    fn addition_and_sum() {
        let mut b = Bytes::new(1);
        b += Bytes::new(2);
        assert_eq!(b + Bytes::new(3), Bytes::new(6));
        let total: Bytes = [Bytes::new(1), Bytes::new(2), Bytes::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Bytes::new(6));
    }

    #[test]
    fn min_max_zero() {
        assert_eq!(Bytes::new(4).min(Bytes::new(6)), Bytes::new(4));
        assert_eq!(Bytes::new(4).max(Bytes::new(6)), Bytes::new(6));
        assert!(Bytes::ZERO.is_zero());
        assert!(!Bytes::new(1).is_zero());
    }

    #[test]
    fn display_units() {
        assert_eq!(Bytes::new(999).to_string(), "999 B");
        assert_eq!(Bytes::from_kb(20).to_string(), "20.00 KB");
        assert_eq!(Bytes::from_mb(5).to_string(), "5.00 MB");
        assert_eq!(Bytes::from_gb(1).to_string(), "1.00 GB");
    }
}
