//! Simulation time (continuous, for the flow-level simulator) and slots
//! (discrete, for the input-queued switch model).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) continuous simulated time, in seconds.
///
/// `SimTime` is totally ordered (NaN is rejected at construction) so it can
/// key the event queue of the flow-level simulator directly.
///
/// # Example
///
/// ```
/// use dcn_types::SimTime;
/// let a = SimTime::from_millis(1.5);
/// let b = SimTime::from_secs(0.0015);
/// assert_eq!(a, b);
/// assert!(a < SimTime::from_secs(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// An unreachable time, used as "never" for completion estimates of
    /// unscheduled flows.
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            !secs.is_nan() && secs >= 0.0,
            "time must be >= 0, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is NaN or negative.
    pub fn from_millis(millis: f64) -> Self {
        SimTime::from_secs(millis / 1e3)
    }

    /// Creates a time from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is NaN or negative.
    pub fn from_micros(micros: f64) -> Self {
        SimTime::from_secs(micros / 1e6)
    }

    /// Creates a time from microseconds, usable in `const` contexts.
    ///
    /// # Panics
    ///
    /// Panics (at compile time when evaluating a constant) if `micros` is
    /// NaN or negative.
    pub const fn from_micros_const(micros: f64) -> Self {
        assert!(!micros.is_nan() && micros >= 0.0, "time must be >= 0");
        SimTime(micros / 1e6)
    }

    /// The time in seconds.
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// The time in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Whether this is the "never" sentinel (or any infinite time).
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction rejects NaN, so total_cmp matches IEEE order here.
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating: an earlier minus a later time is [`SimTime::ZERO`].
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "never")
        } else if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3} us", self.0 * 1e6)
        }
    }
}

/// A discrete slot index of the slotted input-queued switch model
/// (one packet transmission time per the paper's §III-B).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Slot(u64);

impl Slot {
    /// Slot zero (the first slot).
    pub const ZERO: Slot = Slot(0);

    /// Creates a slot from its index.
    pub const fn new(index: u64) -> Self {
        Slot(index)
    }

    /// Returns the slot index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The next slot.
    pub const fn next(self) -> Slot {
        Slot(self.0 + 1)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

impl From<u64> for Slot {
    fn from(index: u64) -> Self {
        Slot(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_millis(1500.0), SimTime::from_secs(1.5));
        assert_eq!(SimTime::from_micros(2000.0), SimTime::from_millis(2.0));
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(a < SimTime::INFINITY);
        assert!(SimTime::INFINITY.is_infinite());
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!(b - a, SimTime::from_secs(2.0));
        assert_eq!(a - b, SimTime::ZERO);
        let mut t = SimTime::ZERO;
        t += SimTime::from_secs(0.5);
        assert_eq!(t, SimTime::from_secs(0.5));
        let s: SimTime = [a, a, a].into_iter().sum();
        assert_eq!(s, SimTime::from_secs(3.0));
    }

    #[test]
    #[should_panic(expected = "time must be >= 0")]
    fn negative_time_panics() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn slot_progression() {
        let s = Slot::new(5);
        assert_eq!(s.next(), Slot::new(6));
        assert_eq!(s.index(), 5);
        assert_eq!(Slot::from(5u64), s);
        assert_eq!(s.to_string(), "slot 5");
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(2.0).to_string(), "2.000 s");
        assert_eq!(SimTime::from_millis(1.5).to_string(), "1.500 ms");
        assert_eq!(SimTime::from_micros(12.0).to_string(), "12.000 us");
        assert_eq!(SimTime::INFINITY.to_string(), "never");
    }
}
