//! Flow identifiers and traffic classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a flow.
///
/// Generators assign identifiers in strictly increasing arrival order, so a
/// smaller `FlowId` always means an earlier (or simultaneous) arrival — the
/// FIFO baseline scheduler relies on this to order flows by arrival without
/// storing timestamps.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FlowId(u64);

impl FlowId {
    /// Creates a flow identifier from its raw value.
    pub const fn new(raw: u64) -> Self {
        FlowId(raw)
    }

    /// Returns the raw identifier value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<u64> for FlowId {
    fn from(raw: u64) -> Self {
        FlowId(raw)
    }
}

/// The paper's two traffic classes (§V-A).
///
/// *Queries* are fixed 20 KB request/response flows whose destinations are
/// uniform over the whole fabric; *background* flows follow a heavy-tailed
/// size distribution and stay within the source's rack. FCT statistics are
/// reported separately per class (Table I, Figs. 6 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FlowClass {
    /// Small latency-sensitive query/response flow (20 KB in the paper).
    Query,
    /// Heavy-tailed rack-local background transfer (backups, shuffles).
    Background,
}

impl FlowClass {
    /// All classes, in a stable order (useful for per-class reporting).
    pub const ALL: [FlowClass; 2] = [FlowClass::Query, FlowClass::Background];

    /// A short human-readable label, as used in the paper's tables.
    pub const fn label(self) -> &'static str {
        match self {
            FlowClass::Query => "query",
            FlowClass::Background => "background",
        }
    }
}

impl fmt::Display for FlowClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_orders_by_raw_value() {
        assert!(FlowId::new(1) < FlowId::new(2));
        assert_eq!(FlowId::from(7u64).raw(), 7);
        assert_eq!(FlowId::new(3).to_string(), "f3");
    }

    #[test]
    fn class_labels() {
        assert_eq!(FlowClass::Query.label(), "query");
        assert_eq!(FlowClass::Background.to_string(), "background");
        assert_eq!(FlowClass::ALL.len(), 2);
    }
}
