//! Shared identifiers and physical units for the BASRPT workspace.
//!
//! Every crate in this workspace speaks in terms of the types defined here:
//! hosts and racks of the simulated fabric, flows and the virtual output
//! queues (VOQs) they live in, byte quantities, link rates and simulation
//! time. Keeping them in one leaf crate avoids accidental unit confusion
//! (e.g. bits vs. bytes, seconds vs. slots) across the scheduler, the
//! slotted switch model and the flow-level fabric simulator.
//!
//! # Example
//!
//! ```
//! use dcn_types::{Bytes, HostId, Rate, SimTime, Voq};
//!
//! let src = HostId::new(3);
//! let dst = HostId::new(77);
//! let voq = Voq::new(src, dst);
//! let size = Bytes::from_kb(20); // a query flow from the paper
//! let rate = Rate::from_gbps(10.0); // edge link
//! let fct = rate.transfer_time(size);
//! assert!(fct > SimTime::ZERO);
//! assert_eq!(voq.src(), src);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bytes;
mod flow;
mod ids;
mod portset;
mod rate;
mod time;

pub use bytes::Bytes;
pub use flow::{FlowClass, FlowId};
pub use ids::{HostId, PlaneId, RackId, ReplicaId, Voq};
pub use portset::PortSet;
pub use rate::Rate;
pub use time::{SimTime, Slot};
