//! Differential tests pinning the macro-slot fast-forward engine to the
//! slot-by-slot reference loop of the slotted switch.
//!
//! `dcn_switch::run_fastforward_probed` replays a cached schedule across
//! provably-valid windows; `dcn_switch::run_probed` recomputes it every
//! slot. Every observable must match **bit for bit**: the completion
//! records, the sampled series, the `avg_penalty` / `avg_total_backlog`
//! accumulators, and — through a slot-fidelity probe that hashes the full
//! event stream in order — every per-slot decision and drain. The only
//! tolerated difference is the wall-clock `latency` of replayed decisions
//! (`None`, since nothing was computed), which the hash therefore skips.
//! This is the same pin-the-refactor technique `tests/calendar_differential.rs`
//! uses for the fabric's completion calendar.

use basrpt::core::{
    CountingScheduler, FastBasrpt, Fifo, IncrementalScheduler, MaxWeight, RoundRobin, Scheduler,
    Srpt, ThresholdBacklogSrpt,
};
use basrpt::probe::{ArrivalEvent, CompletionEvent, DecisionEvent, DrainEvent, Probe, SampleEvent};
use basrpt::switch::arrivals::BernoulliFlowArrivals;
use basrpt::switch::{
    run_fastforward_probed, run_probed, run_probed_with_engine, Engine, RunConfig,
    ScriptedArrivals, SwitchRun,
};
use basrpt::types::{HostId, Voq};

fn voq(src: u32, dst: u32) -> Voq {
    Voq::new(HostId::new(src), HostId::new(dst))
}

fn fnv(h: &mut u64, bits: u64) {
    for b in bits.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// Hashes the complete event stream in arrival order. Declares slot
/// fidelity (the default), so the fast-forward engine must expand every
/// window into the exact per-slot stream of the reference. Decision
/// latencies are deliberately left out of the hash: replayed decisions
/// carry `None` by design.
struct StreamRecorder {
    h: u64,
    events: u64,
}

impl StreamRecorder {
    fn new() -> Self {
        StreamRecorder {
            h: 0xcbf29ce484222325,
            events: 0,
        }
    }
}

impl Probe for StreamRecorder {
    fn wants_decision_timing(&self) -> bool {
        false
    }

    fn on_arrival(&mut self, e: &ArrivalEvent) {
        self.events += 1;
        fnv(&mut self.h, 1);
        fnv(&mut self.h, e.time.to_bits());
        fnv(&mut self.h, e.flow.raw());
        fnv(&mut self.h, e.voq.src().index() as u64);
        fnv(&mut self.h, e.voq.dst().index() as u64);
        fnv(&mut self.h, e.size);
    }

    fn on_drain(&mut self, e: &DrainEvent) {
        self.events += 1;
        fnv(&mut self.h, 2);
        fnv(&mut self.h, e.time.to_bits());
        fnv(&mut self.h, e.flow.raw());
        fnv(&mut self.h, e.voq.src().index() as u64);
        fnv(&mut self.h, e.voq.dst().index() as u64);
        fnv(&mut self.h, e.amount);
    }

    fn on_completion(&mut self, e: &CompletionEvent) {
        self.events += 1;
        fnv(&mut self.h, 3);
        fnv(&mut self.h, e.time.to_bits());
        fnv(&mut self.h, e.flow.raw());
        fnv(&mut self.h, e.size);
        fnv(&mut self.h, e.fct.to_bits());
    }

    fn on_decision(&mut self, e: &DecisionEvent<'_>) {
        self.events += 1;
        fnv(&mut self.h, 4);
        fnv(&mut self.h, e.time.to_bits());
        fnv(&mut self.h, e.schedule.len() as u64);
        for (id, q) in e.schedule.iter() {
            fnv(&mut self.h, id.raw());
            fnv(&mut self.h, q.src().index() as u64);
            fnv(&mut self.h, q.dst().index() as u64);
        }
    }

    fn on_sample(&mut self, e: &SampleEvent<'_>) {
        self.events += 1;
        fnv(&mut self.h, 5);
        fnv(&mut self.h, e.time.to_bits());
        fnv(&mut self.h, e.table.total_backlog());
        fnv(&mut self.h, e.delivered.to_bits());
    }
}

fn assert_runs_identical(reference: &SwitchRun, fast: &SwitchRun, label: &str) {
    assert_eq!(
        reference.completions, fast.completions,
        "{label}: completion records"
    );
    assert_eq!(
        reference.delivered_packets, fast.delivered_packets,
        "{label}: delivered packets"
    );
    assert_eq!(
        reference.leftover_packets, fast.leftover_packets,
        "{label}: leftover packets"
    );
    assert_eq!(
        reference.leftover_flows, fast.leftover_flows,
        "{label}: leftover flows"
    );
    assert_eq!(
        reference.total_backlog, fast.total_backlog,
        "{label}: total backlog series"
    );
    assert_eq!(
        reference.max_port_backlog, fast.max_port_backlog,
        "{label}: max port backlog series"
    );
    assert_eq!(
        reference.lyapunov, fast.lyapunov,
        "{label}: Lyapunov series"
    );
    assert_eq!(
        reference.avg_penalty.to_bits(),
        fast.avg_penalty.to_bits(),
        "{label}: avg penalty must be bit-exact"
    );
    assert_eq!(
        reference.avg_total_backlog.to_bits(),
        fast.avg_total_backlog.to_bits(),
        "{label}: avg total backlog must be bit-exact"
    );
}

/// The disciplines the differential quantifies over, covering every
/// validity class: unbounded windows (SRPT, FIFO, integer-weight fast
/// BASRPT), analytically bounded windows (MaxWeight, threshold), and the
/// always-recompute fallback (fractional-weight fast BASRPT, the stateful
/// RoundRobin), plus the incremental engine forwarding its inner bound.
fn disciplines() -> Vec<(&'static str, Box<dyn Scheduler>)> {
    vec![
        ("srpt", Box::new(Srpt::new())),
        ("fifo", Box::new(Fifo::new())),
        ("maxweight", Box::new(MaxWeight::new())),
        ("threshold", Box::new(ThresholdBacklogSrpt::new(15))),
        // V/N = 2: integer weight, unbounded validity.
        ("fast_basrpt_w2", Box::new(FastBasrpt::new(16.0, 8))),
        // V/N = 0.5: fractional weight, degrades to one-slot validity.
        ("fast_basrpt_w05", Box::new(FastBasrpt::new(4.0, 8))),
        ("round_robin", Box::new(RoundRobin::new())),
        (
            "incremental_srpt",
            Box::new(IncrementalScheduler::new(Srpt::new())),
        ),
    ]
}

fn compare_scripted(
    make_label: &str,
    scheduler: &mut dyn Scheduler,
    reference_scheduler: &mut dyn Scheduler,
    script: Vec<(u64, Voq, u64)>,
    config: RunConfig,
) {
    let mut ref_rec = StreamRecorder::new();
    let reference = run_probed(
        8,
        reference_scheduler,
        &mut ScriptedArrivals::new(script.clone()),
        config,
        &mut ref_rec,
    );
    let mut fast_rec = StreamRecorder::new();
    let fast = run_fastforward_probed(
        8,
        scheduler,
        &mut ScriptedArrivals::new(script),
        config,
        &mut fast_rec,
    );
    assert_runs_identical(&reference, &fast, make_label);
    assert_eq!(
        ref_rec.events, fast_rec.events,
        "{make_label}: event counts"
    );
    assert_eq!(
        ref_rec.h, fast_rec.h,
        "{make_label}: per-slot event stream hash"
    );
}

/// A fixed workload with idle stretches, bursts, and port contention:
/// exercised under every discipline and two sampling periods (per-slot
/// sampling splits every window; sparse sampling lets windows grow).
#[test]
fn all_disciplines_match_on_a_contended_script() {
    let script = vec![
        (0u64, voq(0, 1), 60u64),
        (0, voq(2, 1), 45),
        (0, voq(1, 0), 30),
        (10, voq(3, 4), 25),
        (11, voq(4, 3), 5),
        (150, voq(0, 1), 40),
        (400, voq(5, 6), 12),
    ];
    for config in [
        RunConfig {
            slots: 600,
            sample_every: 1,
        },
        RunConfig {
            slots: 600,
            sample_every: 97,
        },
    ] {
        for (name, mut sched) in disciplines() {
            let mut reference_sched: Box<dyn Scheduler> = disciplines()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| s)
                .expect("same discipline list");
            compare_scripted(
                &format!("{name}/sample_every={}", config.sample_every),
                sched.as_mut(),
                reference_sched.as_mut(),
                script.clone(),
                config,
            );
        }
    }
}

/// Bernoulli arrivals cannot be looked ahead (`ArrivalLookahead::Unknown`),
/// so the engine must poll every slot — yet still skip recomputes while
/// the cached schedule stays provably valid.
#[test]
fn bernoulli_arrivals_match_across_seeds() {
    for seed in [1u64, 2, 3] {
        let mut ref_rec = StreamRecorder::new();
        let reference = run_probed(
            4,
            &mut Srpt::new(),
            &mut BernoulliFlowArrivals::uniform(4, 0.6, 12, seed).unwrap(),
            RunConfig::new(2_000),
            &mut ref_rec,
        );
        let mut fast_rec = StreamRecorder::new();
        let fast = run_fastforward_probed(
            4,
            &mut Srpt::new(),
            &mut BernoulliFlowArrivals::uniform(4, 0.6, 12, seed).unwrap(),
            RunConfig::new(2_000),
            &mut fast_rec,
        );
        assert_runs_identical(&reference, &fast, &format!("bernoulli/seed{seed}"));
        assert_eq!(ref_rec.h, fast_rec.h, "bernoulli/seed{seed}: stream hash");
        assert!(
            reference.completions.len() > 10,
            "bernoulli/seed{seed}: non-trivial run"
        );
    }
}

/// `Engine::from_env`-style dispatch: the `run_probed_with_engine` entry
/// point routes to the right loop and both produce the same run.
#[test]
fn engine_dispatch_is_equivalent() {
    let script = vec![(0u64, voq(0, 1), 25u64), (40, voq(1, 2), 10)];
    let by_slot = run_probed_with_engine(
        Engine::SlotBySlot,
        4,
        &mut Srpt::new(),
        &mut ScriptedArrivals::new(script.clone()),
        RunConfig::new(100),
        basrpt::probe::NoProbe,
    );
    let fast = run_probed_with_engine(
        Engine::FastForward,
        4,
        &mut Srpt::new(),
        &mut ScriptedArrivals::new(script),
        RunConfig::new(100),
        basrpt::probe::NoProbe,
    );
    assert_runs_identical(&by_slot, &fast, "engine dispatch");
}

/// The acceptance workload: a default-scale (200 k slots, 16 ports)
/// elephant-flow script. Fast-forward must agree bit for bit while
/// invoking the scheduler at least 5× less often than the slot-by-slot
/// reference (it actually does orders of magnitude better: SRPT windows
/// only expire at arrivals, completions, and sampling instants).
#[test]
fn elephant_workload_cuts_scheduler_invocations_by_5x() {
    let mut script = Vec::new();
    let mut slot = 0u64;
    for i in 0..40u64 {
        // Elephants with ~10k-packet mean, spread across ports and time.
        let src = (i % 16) as u32;
        let dst = ((i % 16 + 1 + (i / 16) % 15) % 16) as u32;
        let size = 6_000 + (i * 769) % 9_000;
        script.push((slot, voq(src, dst), size));
        slot += 3_000 + (i * 211) % 2_000;
    }
    let config = RunConfig::new(200_000);

    let mut reference_sched = CountingScheduler::new(Srpt::new());
    let reference = run_probed(
        16,
        &mut reference_sched,
        &mut ScriptedArrivals::new(script.clone()),
        config,
        basrpt::probe::NoProbe,
    );
    let mut fast_sched = CountingScheduler::new(Srpt::new());
    let fast = run_fastforward_probed(
        16,
        &mut fast_sched,
        &mut ScriptedArrivals::new(script),
        config,
        basrpt::probe::NoProbe,
    );
    assert_runs_identical(&reference, &fast, "elephants");
    assert!(
        reference.completions.len() == 40,
        "every elephant completes within the horizon"
    );
    assert_eq!(reference_sched.calls(), 200_000);
    assert!(
        fast_sched.calls() * 5 <= reference_sched.calls(),
        "fast-forward made {} scheduler calls vs {} — less than a 5x cut",
        fast_sched.calls(),
        reference_sched.calls()
    );
}

mod random_workloads {
    //! Property tests: bit-identity on *random* scripted workloads across
    //! every discipline — adversarial gaps (including many same-slot
    //! arrivals) and sizes that straddle window boundaries.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn engines_agree_on_random_scripts(
            raw in prop::collection::vec(
                (0u64..120, 0u32..8, 0u32..7, 1u64..80),
                1..25,
            ),
            sample_every in 1u64..64,
        ) {
            let mut slot = 0u64;
            let script: Vec<(u64, Voq, u64)> = raw
                .iter()
                .map(|&(gap, s, d, size)| {
                    slot += gap;
                    let src = s % 8;
                    let dst = (src + 1 + d % 7) % 8;
                    (slot, voq(src, dst), size)
                })
                .collect();
            let config = RunConfig {
                slots: slot + 400,
                sample_every,
            };
            for (name, mut sched) in disciplines() {
                let mut reference_sched: Box<dyn Scheduler> = disciplines()
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, s)| s)
                    .expect("same discipline list");
                let mut ref_rec = StreamRecorder::new();
                let reference = run_probed(
                    8,
                    reference_sched.as_mut(),
                    &mut ScriptedArrivals::new(script.clone()),
                    config,
                    &mut ref_rec,
                );
                let mut fast_rec = StreamRecorder::new();
                let fast = run_fastforward_probed(
                    8,
                    sched.as_mut(),
                    &mut ScriptedArrivals::new(script.clone()),
                    config,
                    &mut fast_rec,
                );
                prop_assert_eq!(&reference.completions, &fast.completions, "{}: completions", name);
                prop_assert_eq!(
                    reference.delivered_packets,
                    fast.delivered_packets,
                    "{}: delivered",
                    name
                );
                prop_assert_eq!(
                    reference.avg_penalty.to_bits(),
                    fast.avg_penalty.to_bits(),
                    "{}: avg penalty",
                    name
                );
                prop_assert_eq!(
                    reference.avg_total_backlog.to_bits(),
                    fast.avg_total_backlog.to_bits(),
                    "{}: avg backlog",
                    name
                );
                prop_assert_eq!(&reference.total_backlog, &fast.total_backlog, "{}: series", name);
                prop_assert_eq!(ref_rec.h, fast_rec.h, "{}: stream hash", name);
            }
        }
    }
}
