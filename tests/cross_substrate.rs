//! Integration test: the two substrates (slotted switch, flow-level
//! fabric) agree on the schedulers' limiting behaviours.

use basrpt::core::{FastBasrpt, Srpt};
use basrpt::fabric::{simulate, FatTree, SimConfig};
use basrpt::switch::arrivals::BernoulliFlowArrivals;
use basrpt::switch::{run as run_switch, RunConfig};
use basrpt::types::SimTime;
use basrpt::workload::TrafficSpec;

/// With V large enough that the size term dominates any backlog, fast
/// BASRPT's decisions match SRPT's except on remaining-size *ties* (all
/// queries share the 20 KB size), where the two disciplines legitimately
/// tie-break differently at any finite V. Aggregates must agree closely.
#[test]
fn fabric_fast_basrpt_huge_v_equals_srpt() {
    let topo = FatTree::scaled(2, 4, 1).unwrap();
    let spec = TrafficSpec::scaled(2, 4, 0.85).unwrap();
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.2))
        .build();

    let srpt = simulate(&topo, &mut Srpt::new(), spec.generator(9).unwrap(), config).unwrap();
    let mut fb = FastBasrpt::new(1e15, 8);
    let fast = simulate(&topo, &mut fb, spec.generator(9).unwrap(), config).unwrap();

    assert_eq!(srpt.arrivals, fast.arrivals);
    let rel = |a: f64, b: f64| (a - b).abs() / b.max(1.0);
    assert!(
        rel(fast.completions as f64, srpt.completions as f64) < 0.01,
        "completions {} vs {}",
        fast.completions,
        srpt.completions
    );
    assert!(
        rel(
            fast.throughput.delivered().as_f64(),
            srpt.throughput.delivered().as_f64()
        ) < 0.01,
        "delivered {} vs {}",
        fast.throughput.delivered(),
        srpt.throughput.delivered()
    );
}

/// The same equivalence on the slotted switch: packet-size ties exist, but
/// delivered totals still match because tie-breaks only permute equals...
/// they can differ, so compare aggregate service: delivered packets per
/// run must be within a whisker.
#[test]
fn switch_fast_basrpt_huge_v_tracks_srpt() {
    let mut a1 = BernoulliFlowArrivals::uniform(6, 0.7, 4, 21).unwrap();
    let mut a2 = BernoulliFlowArrivals::uniform(6, 0.7, 4, 21).unwrap();
    let r1 = run_switch(6, &mut Srpt::new(), &mut a1, RunConfig::new(20_000));
    let mut fb = FastBasrpt::new(1e12, 6);
    let r2 = run_switch(6, &mut fb, &mut a2, RunConfig::new(20_000));
    let diff = (r1.delivered_packets as f64 - r2.delivered_packets as f64).abs();
    assert!(
        diff / (r1.delivered_packets as f64) < 0.01,
        "delivered {} vs {}",
        r1.delivered_packets,
        r2.delivered_packets
    );
}

/// Both substrates see the same qualitative V-effect: moving V from huge to
/// small increases the served backlog share (stability pressure) on the
/// switch and decreases leftover bytes on the fabric at saturation.
#[test]
fn v_effect_is_consistent_across_substrates() {
    // Fabric at high load: smaller V leaves less behind.
    let topo = FatTree::scaled(2, 4, 1).unwrap();
    let spec = TrafficSpec::scaled(2, 4, 0.95).unwrap();
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.4))
        .build();
    let mut small_v = FastBasrpt::new(50.0, 8);
    let mut large_v = FastBasrpt::new(1e9, 8);
    let small = simulate(&topo, &mut small_v, spec.generator(4).unwrap(), config).unwrap();
    let large = simulate(&topo, &mut large_v, spec.generator(4).unwrap(), config).unwrap();
    assert!(
        small.leftover_bytes <= large.leftover_bytes,
        "small V should not strand more: {} vs {}",
        small.leftover_bytes,
        large.leftover_bytes
    );

    // Switch at high load: smaller V yields at least the packet throughput.
    let mut a1 = BernoulliFlowArrivals::uniform(6, 0.9, 4, 5).unwrap();
    let mut a2 = BernoulliFlowArrivals::uniform(6, 0.9, 4, 5).unwrap();
    let mut sv = FastBasrpt::new(0.5, 6);
    let mut lv = FastBasrpt::new(1e9, 6);
    let rs = run_switch(6, &mut sv, &mut a1, RunConfig::new(30_000));
    let rl = run_switch(6, &mut lv, &mut a2, RunConfig::new(30_000));
    assert!(
        rs.leftover_packets as f64 <= rl.leftover_packets as f64 * 1.05 + 50.0,
        "switch: small V leftover {} vs large V {}",
        rs.leftover_packets,
        rl.leftover_packets
    );
}
