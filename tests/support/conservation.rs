//! Bit-exact conservation identities and run-equality assertions.

use super::fingerprint::fingerprint;
use basrpt::fabric::{FabricRun, RepFlowRun};
use basrpt::probe::{ArrivalEvent, Probe, SampleEvent};
use basrpt::types::FlowClass;

/// A passive probe asserting the exact byte identity
/// `arrived == delivered + backlog` at **every sample instant**, not just
/// at the horizon — the mid-flight half of [`assert_conserved`].
///
/// It reports `wants_flow_fidelity() == false`, so attaching it keeps the
/// lazily settling engines on their lazy path: what it checks is that
/// settling accounts only at observation points still presents an exactly
/// conserved table at each of those points.
#[derive(Debug, Default)]
pub struct ConservationProbe {
    /// Context for assertion messages.
    pub label: String,
    /// Cumulative bytes arrived so far (samples see same-instant arrivals
    /// both here and in the table, matching the engine's event order).
    pub arrived: u64,
    /// Number of sample instants checked, so callers can reject a vacuous
    /// pass.
    pub samples: usize,
}

impl ConservationProbe {
    /// Creates a probe whose assertion messages carry `label`.
    pub fn new(label: &str) -> Self {
        ConservationProbe {
            label: label.to_string(),
            ..ConservationProbe::default()
        }
    }
}

impl Probe for ConservationProbe {
    fn wants_decision_timing(&self) -> bool {
        false
    }

    fn wants_flow_fidelity(&self) -> bool {
        false
    }

    fn on_arrival(&mut self, event: &ArrivalEvent) {
        self.arrived += event.size;
    }

    fn on_sample(&mut self, event: &SampleEvent<'_>) {
        self.samples += 1;
        let backlog = event.table.total_backlog();
        let delivered = event.delivered as u64;
        assert_eq!(
            self.arrived,
            delivered + backlog,
            "{}: sample {} at t={}: arrived != delivered + backlog",
            self.label,
            self.samples,
            event.time,
        );
    }
}

/// Asserts the exact conservation identities every engine must satisfy,
/// whatever the discipline, topology, or load:
///
/// * `arrived_bytes == delivered + leftover_bytes` — to the byte;
/// * `completions + leftover_flows == arrivals` — every flow accounted;
/// * the cumulative-delivered series is monotone.
pub fn assert_conserved(run: &FabricRun, label: &str) {
    assert_eq!(
        run.arrived_bytes,
        run.throughput.delivered() + run.leftover_bytes,
        "{label}: arrived != delivered + leftover (exactly)"
    );
    assert_eq!(
        run.completions + run.leftover_flows,
        run.arrivals,
        "{label}: flow count mismatch"
    );
    assert!(
        run.cumulative_delivered
            .values()
            .windows(2)
            .all(|w| w[0] <= w[1]),
        "{label}: cumulative delivered series must be monotone"
    );
}

/// Asserts two runs are **the same run**: every counter, byte total,
/// sampled-series bit, and FCT summary bit agrees. The workhorse of the
/// differential suites — any divergence is an engine bug, not a modelling
/// difference.
pub fn assert_bit_identical(a: &FabricRun, b: &FabricRun, label: &str) {
    assert_eq!(a.arrivals, b.arrivals, "{label}: arrivals");
    assert_eq!(a.completions, b.completions, "{label}: completions");
    assert_eq!(a.reschedules, b.reschedules, "{label}: reschedules");
    assert_eq!(a.arrived_bytes, b.arrived_bytes, "{label}: arrived bytes");
    assert_eq!(
        a.throughput.delivered(),
        b.throughput.delivered(),
        "{label}: delivered bytes"
    );
    assert_eq!(
        a.leftover_bytes, b.leftover_bytes,
        "{label}: leftover bytes"
    );
    assert_eq!(
        a.leftover_flows, b.leftover_flows,
        "{label}: leftover flows"
    );
    assert_eq!(
        fingerprint(a),
        fingerprint(b),
        "{label}: sampled series fingerprint"
    );
    assert_fct_bits_equal(a, b, label);
}

/// [`assert_bit_identical`] minus the reschedule count — for comparisons
/// where the decision count differs by construction (e.g. sharded vs
/// global execution) while every physical observable must still agree.
pub fn assert_observables_identical(a: &FabricRun, b: &FabricRun, label: &str) {
    assert_eq!(a.arrivals, b.arrivals, "{label}: arrivals");
    assert_eq!(a.completions, b.completions, "{label}: completions");
    assert_eq!(a.arrived_bytes, b.arrived_bytes, "{label}: arrived bytes");
    assert_eq!(
        a.throughput.delivered(),
        b.throughput.delivered(),
        "{label}: delivered bytes"
    );
    assert_eq!(
        a.leftover_bytes, b.leftover_bytes,
        "{label}: leftover bytes"
    );
    assert_eq!(
        a.leftover_flows, b.leftover_flows,
        "{label}: leftover flows"
    );
    assert_eq!(
        fingerprint(a),
        fingerprint(b),
        "{label}: sampled series fingerprint"
    );
    assert_fct_bits_equal(a, b, label);
}

/// Asserts the FCT summaries of both traffic classes agree bit for bit
/// (count, mean, p99 — `f64::to_bits` equality, not approximation).
pub fn assert_fct_bits_equal(a: &FabricRun, b: &FabricRun, label: &str) {
    for class in [FlowClass::Background, FlowClass::Query] {
        match (a.fct.summary(class), b.fct.summary(class)) {
            (Some(x), Some(y)) => {
                assert_eq!(x.count, y.count, "{label}: {class:?} FCT count");
                assert_eq!(
                    x.mean_secs.to_bits(),
                    y.mean_secs.to_bits(),
                    "{label}: {class:?} FCT mean must be bit-exact"
                );
                assert_eq!(
                    x.p99_secs.to_bits(),
                    y.p99_secs.to_bits(),
                    "{label}: {class:?} FCT p99 must be bit-exact"
                );
            }
            (None, None) => {}
            _ => panic!("{label}: {class:?} FCT summary presence differs"),
        }
    }
}

/// Asserts a RepFlow run's exact replica accounting on top of the base
/// run's own conservation:
///
/// * the base run conserves bytes and flows ([`assert_conserved`] — the
///   replica layer must not leak into primary-path accounting);
/// * `replica_bytes == winning + losing + racing` — every replica byte
///   classified exactly once;
/// * per flow, `fct ≤ base_fct`, with bit-equality when no replica won —
///   the dominance the first-copy-completes race guarantees;
/// * a winner implies the full flow crossed the alternate plane.
pub fn assert_repflow_accounting(rep: &RepFlowRun, label: &str) {
    assert_conserved(&rep.run, label);
    assert_eq!(
        rep.stats.replica_bytes,
        rep.stats.winning_replica_bytes
            + rep.stats.losing_replica_bytes
            + rep.stats.racing_replica_bytes,
        "{label}: replica bytes must classify exactly"
    );
    assert!(
        rep.stats.replica_wins <= rep.stats.replicated_flows,
        "{label}: wins cannot exceed races"
    );
    assert_eq!(
        rep.completions.len(),
        rep.run.completions,
        "{label}: one completion record per completed flow"
    );
    for c in &rep.completions {
        assert!(
            c.fct <= c.base_fct,
            "{label}: flow {} regressed: {} > {}",
            c.flow,
            c.fct.as_secs(),
            c.base_fct.as_secs()
        );
        if c.winner.is_none() {
            assert_eq!(
                c.fct.as_secs().to_bits(),
                c.base_fct.as_secs().to_bits(),
                "{label}: flow {} has no winner but fct != base_fct",
                c.flow
            );
        }
        if !c.replicated {
            assert!(
                c.winner.is_none(),
                "{label}: unreplicated flow has a winner"
            );
        }
    }
}
