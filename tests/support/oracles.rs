//! Behavioural oracles: work conservation and starvation detection.
//!
//! Unlike the bit-exact checks in [`super::conservation`], these oracles
//! judge *physics*: a sane discipline on a sane workload must keep moving
//! bytes while backlog exists, and a stable discipline must not let
//! backlog trend upward when every port's offered load is below capacity.

use basrpt::fabric::FabricRun;
use basrpt::metrics::TimeSeries;

/// Asserts the run is work-conserving at sample resolution: across any
/// sample interval whose **both** endpoints see positive backlog, some
/// bytes were delivered. A maximal matching (or a water-filling
/// allocation) always serves at least one flow when the table is
/// non-empty, so a flat delivered curve under standing backlog means the
/// engine idled capacity it had work for.
pub fn assert_work_conserving(run: &FabricRun, label: &str) {
    let backlog = run.total_backlog.values();
    let delivered = run.cumulative_delivered.values();
    assert_eq!(
        backlog.len(),
        delivered.len(),
        "{label}: series grids differ"
    );
    for i in 1..backlog.len() {
        if backlog[i - 1] > 0.0 && backlog[i] > 0.0 {
            assert!(
                delivered[i] > delivered[i - 1],
                "{label}: no delivery in [{}, {}] despite standing backlog",
                run.total_backlog.times()[i - 1],
                run.total_backlog.times()[i],
            );
        }
    }
}

/// Least-squares slope of a sampled series, in value-units per second —
/// the instrument behind the starvation oracles. Returns 0 for series
/// shorter than two points.
pub fn series_slope(ts: &TimeSeries) -> f64 {
    let n = ts.len();
    if n < 2 {
        return 0.0;
    }
    let (times, values) = (ts.times(), ts.values());
    let mean_t = times.iter().sum::<f64>() / n as f64;
    let mean_v = values.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (&t, &v) in times.iter().zip(values) {
        num += (t - mean_t) * (v - mean_v);
        den += (t - mean_t) * (t - mean_t);
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Asserts no port is starving: the max-port backlog series must not
/// trend upward faster than `max_slope_bytes_per_sec`. The paper's SRPT
/// starvation gadget drives this slope to ~`edge_rate × load_gap`;
/// a stable discipline keeps it near zero.
pub fn assert_no_starvation(run: &FabricRun, max_slope_bytes_per_sec: f64, label: &str) {
    let slope = series_slope(&run.max_port_backlog);
    assert!(
        slope <= max_slope_bytes_per_sec,
        "{label}: max-port backlog grows at {slope:.0} B/s (limit {max_slope_bytes_per_sec:.0}) — a port is starving"
    );
}

/// Asserts the opposite: the series **does** grow at least this fast —
/// used to prove a starvation gadget actually bites (so the negative
/// oracle above is known to be discriminating, not vacuous).
pub fn assert_starvation_detected(run: &FabricRun, min_slope_bytes_per_sec: f64, label: &str) {
    let slope = series_slope(&run.max_port_backlog);
    assert!(
        slope >= min_slope_bytes_per_sec,
        "{label}: expected starvation ≥ {min_slope_bytes_per_sec:.0} B/s, measured {slope:.0}"
    );
}
