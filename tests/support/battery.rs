//! The one-trait invariant battery for scheduling disciplines.
//!
//! Implement [`DisciplineUnderTest`] (usually via one of the ready-made
//! adapters below — a closure for crossbar schedulers, a unit struct for
//! the fair-share engine, a threshold for RepFlow) and
//! [`run_invariant_battery`] pins the full set of engine-independent
//! invariants across seeds × topologies:
//!
//! * **determinism** — two fresh instances on the same workload produce
//!   bit-identical runs (series fingerprints, FCT bits, every counter);
//! * **conservation** — bytes and flows are exactly conserved, and a
//!   third run with [`ConservationProbe`] attached re-checks the byte
//!   identity at **every sample instant** (exercising the lazy
//!   settlement path) while matching the unprobed run bit for bit;
//! * **work conservation** — standing backlog always moves bytes;
//! * **non-triviality** — the matrix point actually completed flows, so
//!   a vacuous pass cannot hide behind an empty run.

use super::conservation::{
    assert_bit_identical, assert_conserved, assert_repflow_accounting, ConservationProbe,
};
use super::oracles::assert_work_conserving;
use basrpt::core::{RepFlow, Scheduler};
use basrpt::fabric::{
    simulate, simulate_fair_share, simulate_fair_share_probed, simulate_repflow,
    simulate_repflow_probed, FabricRun, FabricSim, FatTree, KAryFatTree, SimConfig, Topology,
};
use basrpt::types::SimTime;
use basrpt::workload::{FlowArrival, TrafficSpec};

/// A discipline the battery can drive: a label for failure messages and a
/// way to run one simulation from scratch (fresh scheduler state each
/// call — determinism is checked by running twice).
pub trait DisciplineUnderTest {
    /// Name used in assertion messages.
    fn label(&self) -> String;

    /// Runs one simulation of `arrivals` on `topo` with fresh state.
    fn run(&self, topo: &dyn Topology, arrivals: Vec<FlowArrival>, config: SimConfig) -> FabricRun;

    /// Runs one simulation with the conservation probe attached, which
    /// asserts `arrived == delivered + backlog` at every sample instant.
    /// The probe reports no fidelity wants, so lazily settling engines
    /// stay on their lazy path while being checked.
    fn run_probed(
        &self,
        topo: &dyn Topology,
        arrivals: Vec<FlowArrival>,
        config: SimConfig,
        probe: &mut ConservationProbe,
    ) -> FabricRun;
}

/// Adapter for crossbar schedulers: any factory closure producing a fresh
/// `Scheduler` (the `usize` argument is the topology's host count, for
/// disciplines whose parameters scale with fabric size).
pub struct ScheduledDiscipline<F: Fn(usize) -> Box<dyn Scheduler>> {
    /// Name used in assertion messages.
    pub name: &'static str,
    /// Fresh-scheduler factory, handed the host count.
    pub make: F,
}

impl<F: Fn(usize) -> Box<dyn Scheduler>> DisciplineUnderTest for ScheduledDiscipline<F> {
    fn label(&self) -> String {
        self.name.to_string()
    }

    fn run(&self, topo: &dyn Topology, arrivals: Vec<FlowArrival>, config: SimConfig) -> FabricRun {
        let mut sched = (self.make)(topo.num_hosts() as usize);
        simulate(topo, sched.as_mut(), arrivals, config).expect("valid simulation")
    }

    fn run_probed(
        &self,
        topo: &dyn Topology,
        arrivals: Vec<FlowArrival>,
        config: SimConfig,
        probe: &mut ConservationProbe,
    ) -> FabricRun {
        let mut sched = (self.make)(topo.num_hosts() as usize);
        FabricSim::new(topo)
            .config(config)
            .scheduler(sched.as_mut())
            .workload(arrivals)
            .probe(probe)
            .run()
            .expect("valid simulation")
    }
}

/// Adapter for the max-min fair-share engine (no crossbar scheduler —
/// every active flow transmits at its water-filled rate).
pub struct FairShareDiscipline;

impl DisciplineUnderTest for FairShareDiscipline {
    fn label(&self) -> String {
        "FairShare".to_string()
    }

    fn run(&self, topo: &dyn Topology, arrivals: Vec<FlowArrival>, config: SimConfig) -> FabricRun {
        simulate_fair_share(topo, arrivals, config).expect("valid simulation")
    }

    fn run_probed(
        &self,
        topo: &dyn Topology,
        arrivals: Vec<FlowArrival>,
        config: SimConfig,
        probe: &mut ConservationProbe,
    ) -> FabricRun {
        simulate_fair_share_probed(topo, arrivals, config, probe).expect("valid simulation")
    }
}

/// Adapter for the RepFlow engine: every battery run additionally checks
/// the exact replica byte accounting and per-flow FCT dominance before
/// handing back the base run.
pub struct RepFlowDiscipline {
    /// Replication threshold in bytes.
    pub threshold: u64,
}

impl DisciplineUnderTest for RepFlowDiscipline {
    fn label(&self) -> String {
        format!("RepFlow<{}>", self.threshold)
    }

    fn run(&self, topo: &dyn Topology, arrivals: Vec<FlowArrival>, config: SimConfig) -> FabricRun {
        let rep = simulate_repflow(topo, &mut RepFlow::new(self.threshold), arrivals, config)
            .expect("valid simulation");
        assert_repflow_accounting(&rep, &self.label());
        rep.run
    }

    fn run_probed(
        &self,
        topo: &dyn Topology,
        arrivals: Vec<FlowArrival>,
        config: SimConfig,
        probe: &mut ConservationProbe,
    ) -> FabricRun {
        // Replica bytes are accounted in `stats`, not the primary meters,
        // so the per-sample identity holds on the primary table.
        let rep = simulate_repflow_probed(
            topo,
            &mut RepFlow::new(self.threshold),
            arrivals,
            config,
            probe,
        )
        .expect("valid simulation");
        assert_repflow_accounting(&rep, &self.label());
        rep.run
    }
}

/// The topology matrix every battery point quantifies over: the
/// scaled-down full-bisection paper fabric and an oversubscribed k-ary
/// fat-tree. The k-ary point is 2:1 oversubscribed with two core planes
/// of exactly one edge-rate flow each (20 Gbps uplink / 2 planes =
/// 10 Gbps), so both the aggregate core filter and the per-plane ECMP
/// filter are binding without starving any flow outright.
pub fn battery_topologies() -> Vec<(&'static str, Box<dyn Topology>)> {
    let paper = FatTree::scaled(2, 4, 1).expect("valid scaled fat-tree");
    let kary = KAryFatTree::builder(4)
        .hosts_per_edge(4)
        .oversubscription(2.0)
        .build()
        .expect("valid k-ary parameters");
    vec![
        ("fat-tree-8", Box::new(paper)),
        ("kary-4-oversub", Box::new(kary)),
    ]
}

/// The paper's traffic pattern scaled to `topo`, collected up to
/// `horizon` so the same workload can be replayed against several
/// engines. The generator is an infinite Poisson process; the engines
/// ignore arrivals at or past the horizon, so cutting at
/// `time < horizon` replays identically to streaming the generator.
pub fn battery_arrivals(
    topo: &dyn Topology,
    load: f64,
    seed: u64,
    horizon: SimTime,
) -> Vec<FlowArrival> {
    TrafficSpec::scaled(topo.num_racks(), topo.hosts_per_rack(), load)
        .expect("valid scaled spec")
        .generator(seed)
        .expect("valid generator")
        .take_while(|a| a.time < horizon)
        .collect()
}

/// Runs the full invariant battery for one discipline: seeds {1, 2} ×
/// [`battery_topologies`] at 80 % load over a 20 ms horizon (the k-ary
/// point alone generates several thousand flows per seed; a longer
/// horizon adds debug-mode minutes without new behavior).
pub fn run_invariant_battery(d: &dyn DisciplineUnderTest) {
    let config = SimConfig::builder()
        .horizon(SimTime::from_millis(20.0))
        .build();
    for (topo_name, topo) in &battery_topologies() {
        for seed in [1u64, 2] {
            let label = format!("{}/{topo_name}/seed{seed}", d.label());
            let arrivals = battery_arrivals(topo.as_ref(), 0.8, seed, config.horizon);
            let a = d.run(topo.as_ref(), arrivals.clone(), config);
            let b = d.run(topo.as_ref(), arrivals.clone(), config);
            assert_bit_identical(&a, &b, &format!("{label}: determinism"));
            assert_conserved(&a, &label);
            assert_work_conserving(&a, &label);
            assert!(a.completions > 0, "{label}: vacuous matrix point");
            // Third run with the conservation probe attached: bytes must
            // balance exactly at every sample instant (the probe asserts
            // per sample), and the passive observer must not perturb a
            // single output bit.
            let mut probe = ConservationProbe::new(&label);
            let c = d.run_probed(topo.as_ref(), arrivals, config, &mut probe);
            assert!(probe.samples > 0, "{label}: no sample instants checked");
            assert_bit_identical(&a, &c, &format!("{label}: probed run diverged"));
        }
    }
}
