//! FNV-1a fingerprinting of runs and probe event streams.
//!
//! One sequential 64-bit FNV-1a hash threads through every word of the
//! observable under test, so two fingerprints agree iff the observables
//! are **bit-identical** — the backbone of every differential suite. The
//! event tags and field orders below are frozen: golden fingerprints in
//! `tests/probe_differential.rs` depend on them.

use basrpt::fabric::FabricRun;
use basrpt::metrics::TimeSeries;
use basrpt::probe::{ArrivalEvent, CompletionEvent, DecisionEvent, DrainEvent, Probe, SampleEvent};

/// The FNV-1a 64-bit offset basis every fingerprint starts from.
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// Folds one 64-bit word into a running FNV-1a hash, byte by byte
/// (little-endian).
pub fn fnv(h: &mut u64, bits: u64) {
    for b in bits.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// Folds a whole sampled series — length, then every (time, value) pair's
/// exact bits — into a running hash.
pub fn series_hash(h: &mut u64, ts: &TimeSeries) {
    fnv(h, ts.len() as u64);
    for (&t, &v) in ts.times().iter().zip(ts.values()) {
        fnv(h, t.to_bits());
        fnv(h, v.to_bits());
    }
}

/// The bit-exact fingerprint of a run's four sampled series. Two runs
/// with equal fingerprints sampled the same backlog and delivery
/// trajectories to the last bit.
pub fn fingerprint(run: &FabricRun) -> u64 {
    let mut h = FNV_OFFSET;
    series_hash(&mut h, &run.total_backlog);
    series_hash(&mut h, &run.monitored_port_backlog);
    series_hash(&mut h, &run.max_port_backlog);
    series_hash(&mut h, &run.cumulative_delivered);
    h
}

/// Sequential FNV-1a hash over the full probe event stream — the order-
/// and content-sensitive fingerprint used to prove two engines emit the
/// exact same events in the exact same order (and, via
/// [`FnvProbe::resumed_at`], that a restored engine emits the exact
/// continuation of a suspended one's).
pub struct FnvProbe {
    /// The running hash; read it after the run to compare streams.
    pub hash: u64,
}

impl FnvProbe {
    /// Starts a fresh stream hash.
    pub fn new() -> Self {
        FnvProbe { hash: FNV_OFFSET }
    }

    /// Continues hashing from a suspended stream's state.
    pub fn resumed_at(hash: u64) -> Self {
        FnvProbe { hash }
    }
}

impl Probe for FnvProbe {
    fn wants_decision_timing(&self) -> bool {
        false
    }
    fn on_arrival(&mut self, e: &ArrivalEvent) {
        fnv(&mut self.hash, 1);
        fnv(&mut self.hash, e.time.to_bits());
        fnv(&mut self.hash, e.flow.raw());
        fnv(&mut self.hash, e.size);
    }
    fn on_drain(&mut self, e: &DrainEvent) {
        fnv(&mut self.hash, 2);
        fnv(&mut self.hash, e.time.to_bits());
        fnv(&mut self.hash, e.flow.raw());
        fnv(&mut self.hash, e.amount);
    }
    fn on_completion(&mut self, e: &CompletionEvent) {
        fnv(&mut self.hash, 3);
        fnv(&mut self.hash, e.time.to_bits());
        fnv(&mut self.hash, e.flow.raw());
        fnv(&mut self.hash, e.fct.to_bits());
    }
    fn on_sample(&mut self, e: &SampleEvent<'_>) {
        fnv(&mut self.hash, 4);
        fnv(&mut self.hash, e.time.to_bits());
        fnv(&mut self.hash, e.table.total_backlog());
    }
    fn on_decision(&mut self, e: &DecisionEvent<'_>) {
        fnv(&mut self.hash, 5);
        fnv(&mut self.hash, e.time.to_bits());
        fnv(&mut self.hash, e.schedule.len() as u64);
        for (id, voq) in e.schedule.iter() {
            fnv(&mut self.hash, id.raw());
            fnv(&mut self.hash, voq.src().index() as u64);
            fnv(&mut self.hash, voq.dst().index() as u64);
        }
    }
}
