//! The shared invariant-test layer for the integration suites.
//!
//! Seven differential suites grew private copies of the same three
//! instruments: FNV-1a fingerprinting of sampled series and probe event
//! streams, the bit-exact "two runs are the same run" comparison, and the
//! conservation identities every engine must satisfy. This module is the
//! single home for all of them, plus [`battery`]: implement
//! [`battery::DisciplineUnderTest`] for a new scheduler (one closure) and
//! [`battery::run_invariant_battery`] runs the full set — determinism,
//! byte/flow conservation, work conservation, series sanity — across
//! seeds × topologies, so a new discipline is pinned before it grows its
//! own bespoke suite.
//!
//! Integration tests opt in with `mod support;` and take what they need:
//!
//! ```ignore
//! mod support;
//! use support::fingerprint::{fingerprint, FnvProbe};
//! use support::conservation::{assert_bit_identical, assert_conserved};
//! ```
//!
//! Every suite compiles this file independently, so helpers one suite
//! skips are dead code in another — hence the module-wide allow.
#![allow(dead_code)]

pub mod battery;
pub mod conservation;
pub mod fingerprint;
pub mod oracles;
