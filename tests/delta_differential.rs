//! Differential tests for the delta-rate fabric engine.
//!
//! The production engine (`dcn_fabric::simulate`) keeps a persistent
//! `DeltaAllocator` across events and touches only the flows whose rate
//! allocation changed; `dcn_fabric::reference` retains both full-recompute
//! engines it replaced (`simulate_scan`, the seed engine's linear rescan,
//! and `simulate_full_rebuild`, the PR 3–5 calendar engine that rebuilt
//! the allocation state per event). All three share the exact epoch-based
//! drain accounting and per-instant event ordering, so every observable —
//! event streams, sampled series, FCT summaries, byte conservation — must
//! match **bit for bit** across seeds × disciplines × core-enforcement
//! modes. This is the same pin-the-refactor technique PR 1 used for the
//! incremental scheduler, PR 3 for the calendar, and PR 4 for the
//! fast-forward switch engine.

mod support;

use basrpt::core::{FastBasrpt, Scheduler, Srpt};
use basrpt::fabric::{reference, simulate, FabricSim, FatTree, SimConfig};
use basrpt::probe::EventCounterProbe;
use basrpt::types::SimTime;
use basrpt::workload::TrafficSpec;
use support::conservation::assert_bit_identical;
use support::fingerprint::fingerprint;

fn config(horizon_secs: f64, enforce_core: bool) -> SimConfig {
    SimConfig::builder()
        .horizon(SimTime::from_secs(horizon_secs))
        .enforce_core_capacity(enforce_core)
        .build()
}

type MakeScheduler = Box<dyn Fn() -> Box<dyn Scheduler>>;

fn disciplines() -> Vec<(&'static str, MakeScheduler)> {
    vec![
        ("srpt", Box::new(|| Box::new(Srpt::new()))),
        (
            "fast_basrpt",
            Box::new(|| Box::new(FastBasrpt::new(2500.0 * 8.0 / 144.0, 8))),
        ),
    ]
}

/// Seeds 1..=3 × {SRPT, FastBasrpt} × {free, core-enforced}: run summaries,
/// series fingerprints, and FCT summaries all bit-identical between the
/// delta engine and **both** full-recompute references.
#[test]
fn delta_matches_both_references_across_seeds_and_disciplines() {
    for (name, make) in &disciplines() {
        for seed in 1..=3u64 {
            for enforce in [false, true] {
                let topo = FatTree::scaled(2, 4, 1).unwrap();
                let spec = TrafficSpec::scaled(2, 4, 0.9).unwrap();
                let cfg = config(0.1, enforce);
                let label = format!("{name}/seed{seed}/enforce={enforce}");
                let delta =
                    simulate(&topo, make().as_mut(), spec.generator(seed).unwrap(), cfg).unwrap();
                let scan = reference::simulate_scan(
                    &topo,
                    make().as_mut(),
                    spec.generator(seed).unwrap(),
                    cfg,
                )
                .unwrap();
                let rebuild = reference::simulate_full_rebuild(
                    &topo,
                    make().as_mut(),
                    spec.generator(seed).unwrap(),
                    cfg,
                )
                .unwrap();
                assert_bit_identical(&delta, &scan, &format!("{label} vs scan"));
                assert_bit_identical(&delta, &rebuild, &format!("{label} vs rebuild"));
                assert!(delta.completions > 0, "{label}: non-trivial run");
            }
        }
    }
}

/// An oversubscribed fabric (core budgets binding on every reschedule)
/// exercises the persistent `CoreBudgets` filter: the delta engine must
/// still match the reference filter's admissions bit for bit.
#[test]
fn delta_matches_references_on_oversubscribed_fabric() {
    let topo = FatTree::scaled(2, 8, 1).unwrap();
    assert!(!topo.is_full_bisection(), "core must be binding");
    let spec = TrafficSpec::scaled(2, 8, 0.9).unwrap();
    let cfg = config(0.1, false); // oversubscription enforces on its own
    for seed in [5u64, 11] {
        let delta = simulate(&topo, &mut Srpt::new(), spec.generator(seed).unwrap(), cfg).unwrap();
        let scan =
            reference::simulate_scan(&topo, &mut Srpt::new(), spec.generator(seed).unwrap(), cfg)
                .unwrap();
        assert_bit_identical(&delta, &scan, &format!("oversubscribed/seed{seed}"));
        assert!(delta.completions > 0);
    }
}

/// The full event streams match too: counting every arrival, drain,
/// completion, sample, and decision event on all three paths gives the
/// same totals (fingerprints above already pin the sampled subset).
#[test]
fn delta_and_references_emit_identical_event_streams() {
    let topo = FatTree::scaled(2, 4, 1).unwrap();
    let spec = TrafficSpec::scaled(2, 4, 0.9).unwrap();
    let cfg = config(0.05, false);
    let mut delta_counter = EventCounterProbe::new();
    let delta = FabricSim::new(&topo)
        .config(cfg)
        .scheduler(&mut Srpt::new())
        .workload(spec.generator(7).unwrap())
        .probe(&mut delta_counter)
        .run()
        .unwrap();
    let mut scan_counter = EventCounterProbe::new();
    let scan = reference::simulate_scan_probed(
        &topo,
        &mut Srpt::new(),
        spec.generator(7).unwrap(),
        cfg,
        &mut scan_counter,
    )
    .unwrap();
    let mut rebuild_counter = EventCounterProbe::new();
    let rebuild = reference::simulate_full_rebuild_probed(
        &topo,
        &mut Srpt::new(),
        spec.generator(7).unwrap(),
        cfg,
        &mut rebuild_counter,
    )
    .unwrap();
    for (label, other) in [("scan", &scan_counter), ("rebuild", &rebuild_counter)] {
        assert_eq!(delta_counter.arrivals(), other.arrivals(), "{label}");
        assert_eq!(delta_counter.drains(), other.drains(), "{label}");
        assert_eq!(delta_counter.completions(), other.completions(), "{label}");
        assert_eq!(delta_counter.samples(), other.samples(), "{label}");
        assert_eq!(delta_counter.decisions(), other.decisions(), "{label}");
    }
    assert_eq!(fingerprint(&delta), fingerprint(&scan));
    assert_eq!(fingerprint(&delta), fingerprint(&rebuild));
}
