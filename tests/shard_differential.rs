//! Differential tests for the sharded fabric engine.
//!
//! `dcn_fabric::simulate_sharded` partitions one run by rack-connected
//! component onto per-shard `DeltaAllocator` engines and merges the event
//! streams deterministically. On separable workloads (rack- or
//! cluster-scoped queries plus the always-rack-local background traffic)
//! every partition-invariant observable must match the single global
//! engine **bit for bit**, and must not depend on the shard count: the
//! fabric couples flows only through shared host NICs and per-rack uplink
//! budgets, so rack-connected components evolve independently no matter
//! which worker simulates them.
//!
//! Pinned here, across seeds × {SRPT, fast BASRPT} × oversubscribed k-ary
//! fabrics × {rack, cluster} query scopes:
//!
//! * global `simulate` vs `simulate_sharded` at S ∈ {1, 2, 4, 8};
//! * shard-count invariance (S = 1 vs each S > 1), including FCT means
//!   compared via `to_bits`;
//! * the ISSUE acceptance cell: a 1152-host `KAryFatTree` (k = 16, 9
//!   hosts per edge, 3:1 oversubscribed) completes and is bit-identical
//!   across shard counts, honouring `BASRPT_SHARDS` via
//!   [`shards_from_env`].
//!
//! `FabricRun::reschedules` is deliberately *not* compared between
//! different shard counts: it is the sum of per-bin decision counts, and
//! how many flows share one matching depends on the partition (see the
//! `dcn_fabric` shard module docs).

use basrpt::core::{FastBasrpt, Scheduler, Srpt};
use basrpt::fabric::{
    shards_from_env, simulate, simulate_sharded, FabricRun, KAryFatTree, SimConfig, Topology,
};
use basrpt::metrics::TimeSeries;
use basrpt::types::{FlowClass, SimTime};
use basrpt::workload::{QueryScope, TrafficSpec};

fn fnv(h: &mut u64, bits: u64) {
    for b in bits.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn series_hash(h: &mut u64, ts: &TimeSeries) {
    fnv(h, ts.len() as u64);
    for (&t, &v) in ts.times().iter().zip(ts.values()) {
        fnv(h, t.to_bits());
        fnv(h, v.to_bits());
    }
}

fn fingerprint(run: &FabricRun) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    series_hash(&mut h, &run.total_backlog);
    series_hash(&mut h, &run.monitored_port_backlog);
    series_hash(&mut h, &run.max_port_backlog);
    series_hash(&mut h, &run.cumulative_delivered);
    h
}

/// Compares every partition-invariant observable of two runs, FCT means
/// via `to_bits` (no tolerance).
fn assert_bit_identical(a: &FabricRun, b: &FabricRun, label: &str) {
    assert_eq!(a.arrivals, b.arrivals, "{label}: arrivals");
    assert_eq!(a.completions, b.completions, "{label}: completions");
    assert_eq!(a.arrived_bytes, b.arrived_bytes, "{label}: arrived bytes");
    assert_eq!(
        a.throughput.delivered(),
        b.throughput.delivered(),
        "{label}: delivered bytes"
    );
    assert_eq!(
        a.leftover_bytes, b.leftover_bytes,
        "{label}: leftover bytes"
    );
    assert_eq!(
        a.leftover_flows, b.leftover_flows,
        "{label}: leftover flows"
    );
    assert_eq!(
        fingerprint(a),
        fingerprint(b),
        "{label}: sampled series fingerprint"
    );
    for class in [FlowClass::Query, FlowClass::Background] {
        match (a.fct.summary(class), b.fct.summary(class)) {
            (Some(x), Some(y)) => {
                assert_eq!(x.count, y.count, "{label}: {class:?} FCT count");
                assert_eq!(
                    x.mean_secs.to_bits(),
                    y.mean_secs.to_bits(),
                    "{label}: {class:?} FCT mean bits"
                );
            }
            (None, None) => {}
            _ => panic!("{label}: {class:?} FCT summary presence differs"),
        }
    }
}

/// An oversubscribed k = 4 fat-tree (8 racks × 6 hosts = 48 hosts, 3:1)
/// with a separable workload in the given query scope.
fn small_fabric(scope: QueryScope) -> (KAryFatTree, TrafficSpec) {
    let topo = KAryFatTree::builder(4)
        .hosts_per_edge(6)
        .oversubscription(3.0)
        .build()
        .expect("valid k-ary parameters");
    let spec = TrafficSpec::scaled(topo.num_racks(), topo.hosts_per_rack(), 0.7)
        .and_then(|s| s.with_query_scope(scope))
        .expect("valid scoped spec");
    (topo, spec)
}

fn config(horizon_secs: f64) -> SimConfig {
    SimConfig::builder()
        .horizon(SimTime::from_secs(horizon_secs))
        .build()
}

/// The full differential matrix on the small oversubscribed fabric.
#[test]
fn sharded_run_is_bit_identical_to_global_and_shard_count_invariant() {
    for scope in [QueryScope::Rack, QueryScope::Cluster(2)] {
        let (topo, spec) = small_fabric(scope);
        let cfg = config(0.02);
        for seed in [1u64, 2] {
            run_matrix(&topo, &spec, cfg, seed, scope, "srpt", &|| Srpt::new());
            let hosts = topo.num_hosts();
            let v = 2500.0 * 8.0 / hosts as f64;
            run_matrix(&topo, &spec, cfg, seed, scope, "fast-basrpt", &|| {
                FastBasrpt::new(v, hosts as usize)
            });
        }
    }
}

fn run_matrix<S, F>(
    topo: &KAryFatTree,
    spec: &TrafficSpec,
    cfg: SimConfig,
    seed: u64,
    scope: QueryScope,
    name: &str,
    factory: &F,
) where
    S: Scheduler,
    F: Fn() -> S + Sync,
{
    // The generator is an endless Poisson stream; cut it at the horizon so
    // both engines consume exactly the same finite arrival vector.
    let arrivals: Vec<_> = spec
        .generator(seed)
        .expect("generator")
        .take_while(|a| a.time <= cfg.horizon)
        .collect();

    let mut sched = factory();
    let global = simulate(topo, &mut sched, arrivals.iter().copied(), cfg).expect("global run");

    let base = simulate_sharded(topo, factory, arrivals.iter().copied(), cfg, 1)
        .expect("sharded run at S=1");
    let label = |s: usize| format!("{name} seed {seed} scope {scope:?} S={s}");
    assert_bit_identical(&global, &base.run, &format!("{} vs global", label(1)));
    assert_eq!(
        global.reschedules,
        base.run.reschedules,
        "{}: reschedules vs global",
        label(1)
    );

    for shards in [2usize, 4, 8] {
        let sharded = simulate_sharded(topo, factory, arrivals.iter().copied(), cfg, shards)
            .expect("sharded run");
        assert!(
            sharded.shards_used >= 1 && sharded.shards_used <= shards,
            "{}: shard count out of range",
            label(shards)
        );
        assert_bit_identical(&base.run, &sharded.run, &label(shards));
        assert_eq!(
            base.completion_log.len(),
            sharded.completion_log.len(),
            "{}: completion log length",
            label(shards)
        );
        for (x, y) in base.completion_log.iter().zip(&sharded.completion_log) {
            assert_eq!(x.flow, y.flow, "{}: completion order", label(shards));
            assert_eq!(
                x.time.as_secs().to_bits(),
                y.time.as_secs().to_bits(),
                "{}: completion instant bits",
                label(shards)
            );
        }
    }
}

/// ISSUE acceptance: a ≥ 1152-host parameterized fat-tree run completes
/// and every observable is bit-identical across `BASRPT_SHARDS` ∈
/// {1, 2, 4, 8} (plus whatever the environment selects — `make verify`
/// runs this file under `BASRPT_SHARDS=2`).
#[test]
fn kary_1152_host_run_is_shard_count_invariant() {
    let topo = KAryFatTree::builder(16)
        .hosts_per_edge(9)
        .oversubscription(3.0)
        .build()
        .expect("valid k-ary parameters");
    assert_eq!(topo.num_hosts(), 1152);

    let spec = TrafficSpec::scaled(topo.num_racks(), topo.hosts_per_rack(), 0.5)
        .and_then(|s| s.with_query_scope(QueryScope::Cluster(8)))
        .expect("valid scoped spec");
    let cfg = config(0.001);
    let arrivals: Vec<_> = spec
        .generator(5)
        .expect("generator")
        .take_while(|a| a.time <= cfg.horizon)
        .collect();

    let factory = || Srpt::new();
    let mut shard_counts = vec![1usize, 2, 4, 8];
    let from_env = shards_from_env();
    if !shard_counts.contains(&from_env) {
        shard_counts.push(from_env);
    }

    let mut baseline: Option<basrpt::fabric::ShardedRun> = None;
    for shards in shard_counts {
        let run = simulate_sharded(&topo, &factory, arrivals.iter().copied(), cfg, shards)
            .expect("1152-host sharded run");
        assert!(run.run.completions > 0, "S={shards}: no completions");
        match &baseline {
            None => baseline = Some(run),
            Some(base) => {
                assert_bit_identical(&base.run, &run.run, &format!("1152-host S={shards}"));
            }
        }
    }
}
