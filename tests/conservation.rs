//! Integration test: end-to-end conservation and determinism of the whole
//! pipeline (workload generator → fabric engine → metrics) under every
//! discipline.

use basrpt::core::{
    FastBasrpt, Fifo, MaxWeight, RoundRobin, Scheduler, Srpt, ThresholdBacklogSrpt,
};
use basrpt::fabric::{simulate, FabricRun, FatTree, SimConfig};
use basrpt::types::{Bytes, SimTime};
use basrpt::workload::TrafficSpec;

fn schedulers(n: usize) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Srpt::new()),
        Box::new(FastBasrpt::new(2500.0, n)),
        Box::new(FastBasrpt::new(0.0, n)),
        Box::new(MaxWeight::new()),
        Box::new(Fifo::new()),
        Box::new(RoundRobin::new()),
        Box::new(ThresholdBacklogSrpt::new(10_000_000)),
    ]
}

fn run(sched: &mut dyn Scheduler, seed: u64, load: f64) -> FabricRun {
    let topo = FatTree::scaled(2, 4, 1).expect("valid");
    let spec = TrafficSpec::scaled(2, 4, load).expect("valid");
    simulate(
        &topo,
        sched,
        spec.generator(seed).expect("valid"),
        SimConfig::builder()
            .horizon(SimTime::from_secs(0.2))
            .build(),
    )
    .expect("valid simulation")
}

#[test]
fn bytes_are_conserved_under_every_discipline() {
    for mut sched in schedulers(8) {
        for seed in [1, 2] {
            let r = run(sched.as_mut(), seed, 0.9);
            assert_eq!(
                r.arrived_bytes,
                r.throughput.delivered() + r.leftover_bytes,
                "{} seed {seed}: arrived != delivered + leftover",
                sched.name()
            );
            assert_eq!(
                r.completions + r.leftover_flows,
                r.arrivals,
                "{} seed {seed}: flow count mismatch",
                sched.name()
            );
        }
    }
}

#[test]
fn fct_is_bounded_below_by_line_rate() {
    for mut sched in schedulers(8) {
        let r = run(sched.as_mut(), 3, 0.7);
        // No flow can beat its size / edge-rate transfer time. The smallest
        // flows are the 20 KB queries: 16 us at 10 Gbps.
        if let Some(s) = r.fct.summary(basrpt::FlowClass::Query) {
            assert!(
                s.p50_secs >= 20_000.0 / 1.25e9 - 1e-12,
                "{}: median query FCT {} below line rate",
                sched.name(),
                s.p50_secs
            );
        }
    }
}

#[test]
fn runs_are_deterministic() {
    // Two fresh schedulers of the same kind on the same seed must produce
    // byte-identical outcomes.
    let (a, b) = (schedulers(8), schedulers(8));
    for (mut sa, mut sb) in a.into_iter().zip(b) {
        let ra = run(sa.as_mut(), 42, 0.9);
        let rb = run(sb.as_mut(), 42, 0.9);
        assert_eq!(ra.arrivals, rb.arrivals, "{}", sa.name());
        assert_eq!(
            ra.throughput.delivered(),
            rb.throughput.delivered(),
            "{}",
            sa.name()
        );
        assert_eq!(ra.completions, rb.completions, "{}", sa.name());
        assert_eq!(ra.leftover_bytes, rb.leftover_bytes, "{}", sa.name());
    }
}

mod random_workloads {
    //! Property tests: exact conservation on *scripted* random workloads,
    //! not just the Poisson generator — adversarial inter-arrival gaps and
    //! sizes that do not divide any slot exercise the engine's epoch-based
    //! drain accounting where rounding noise used to hide.

    use super::*;
    use basrpt::types::{FlowClass, FlowId, HostId, Voq};
    use basrpt::workload::FlowArrival;
    use proptest::prelude::*;

    /// Turns raw generated tuples into a valid, time-ordered arrival
    /// script on the 8-host scaled fabric (no self-loops, non-zero sizes).
    fn scripted(raw: &[(u64, u32, u32, u64)]) -> Vec<FlowArrival> {
        let mut t = SimTime::ZERO;
        raw.iter()
            .enumerate()
            .map(|(i, &(dt_us, s, d, size))| {
                t += SimTime::from_micros(dt_us as f64);
                let src = s % 8;
                let dst = (src + 1 + d % 7) % 8;
                FlowArrival {
                    id: FlowId::new(i as u64),
                    time: t,
                    voq: Voq::new(HostId::new(src), HostId::new(dst)),
                    size: Bytes::new(size),
                    class: FlowClass::Background,
                }
            })
            .collect()
    }

    /// The four disciplines the conservation property quantifies over.
    fn disciplines() -> Vec<Box<dyn Scheduler>> {
        vec![
            Box::new(Srpt::new()),
            Box::new(FastBasrpt::new(2500.0, 8)),
            Box::new(Fifo::new()),
            Box::new(MaxWeight::new()),
        ]
    }

    proptest! {
        #[test]
        fn bytes_and_flows_are_exactly_conserved(
            raw in prop::collection::vec(
                (0u64..300, 0u32..8, 0u32..7, 1u64..1_000_000),
                1..40,
            )
        ) {
            let arrivals = scripted(&raw);
            let topo = FatTree::scaled(2, 4, 1).expect("valid");
            let config = SimConfig::builder()
                .horizon(SimTime::from_millis(30.0))
                .build();
            for mut sched in disciplines() {
                let r = simulate(&topo, sched.as_mut(), arrivals.clone(), config)
                    .expect("valid simulation");
                prop_assert_eq!(
                    r.arrived_bytes,
                    r.throughput.delivered() + r.leftover_bytes,
                    "{}: arrived != delivered + leftover (exactly)",
                    sched.name()
                );
                prop_assert_eq!(
                    r.completions + r.leftover_flows,
                    r.arrivals,
                    "{}: flow count mismatch",
                    sched.name()
                );
                let delivered = r.cumulative_delivered.values();
                prop_assert!(
                    delivered.windows(2).all(|w| w[0] <= w[1]),
                    "{}: cumulative delivered series must be monotone",
                    sched.name()
                );
                prop_assert_eq!(
                    r.arrivals,
                    arrivals.len(),
                    "{}: every scripted arrival lands before the horizon",
                    sched.name()
                );
            }
        }
    }
}

#[test]
fn light_load_leaves_nothing_behind() {
    // At 20 % load over 0.2 s every discipline should deliver nearly all
    // bytes (only the most recent arrivals are still in flight).
    for mut sched in schedulers(8) {
        let r = run(sched.as_mut(), 5, 0.2);
        let frac_left = r.leftover_bytes.as_f64() / r.arrived_bytes.as_f64().max(1.0);
        assert!(
            frac_left < 0.2,
            "{} left {:.1}% of bytes at 20% load",
            sched.name(),
            frac_left * 100.0
        );
        assert!(r.throughput.delivered() > Bytes::ZERO);
    }
}
