//! Integration test: end-to-end conservation and determinism of the whole
//! pipeline (workload generator → fabric engine → metrics) under every
//! discipline — the crossbar schedulers through `simulate`, plus the
//! fair-share and RepFlow engines, all through the shared invariant
//! battery in `tests/support/`.

mod support;

use basrpt::core::{
    FastBasrpt, Fifo, MaxWeight, RepFlow, RoundRobin, Scheduler, Srpt, ThresholdBacklogSrpt,
};
use basrpt::fabric::{
    simulate, simulate_fair_share, simulate_repflow, FabricRun, FatTree, KAryFatTree, SimConfig,
};
use basrpt::types::{Bytes, SimTime};
use basrpt::workload::TrafficSpec;
use support::battery::{
    run_invariant_battery, FairShareDiscipline, RepFlowDiscipline, ScheduledDiscipline,
};
use support::conservation::{assert_conserved, assert_repflow_accounting};

fn schedulers(n: usize) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Srpt::new()),
        Box::new(FastBasrpt::new(2500.0, n)),
        Box::new(FastBasrpt::new(0.0, n)),
        Box::new(MaxWeight::new()),
        Box::new(Fifo::new()),
        Box::new(RoundRobin::new()),
        Box::new(ThresholdBacklogSrpt::new(10_000_000)),
        Box::new(RepFlow::default()),
    ]
}

fn run(sched: &mut dyn Scheduler, seed: u64, load: f64) -> FabricRun {
    let topo = FatTree::scaled(2, 4, 1).expect("valid");
    let spec = TrafficSpec::scaled(2, 4, load).expect("valid");
    simulate(
        &topo,
        sched,
        spec.generator(seed).expect("valid"),
        SimConfig::builder()
            .horizon(SimTime::from_secs(0.2))
            .build(),
    )
    .expect("valid simulation")
}

#[test]
fn bytes_are_conserved_under_every_discipline() {
    for mut sched in schedulers(8) {
        for seed in [1, 2] {
            let r = run(sched.as_mut(), seed, 0.9);
            assert_eq!(
                r.arrived_bytes,
                r.throughput.delivered() + r.leftover_bytes,
                "{} seed {seed}: arrived != delivered + leftover",
                sched.name()
            );
            assert_eq!(
                r.completions + r.leftover_flows,
                r.arrivals,
                "{} seed {seed}: flow count mismatch",
                sched.name()
            );
        }
    }
}

#[test]
fn fct_is_bounded_below_by_line_rate() {
    for mut sched in schedulers(8) {
        let r = run(sched.as_mut(), 3, 0.7);
        // No flow can beat its size / edge-rate transfer time. The smallest
        // flows are the 20 KB queries: 16 us at 10 Gbps.
        if let Some(s) = r.fct.summary(basrpt::FlowClass::Query) {
            assert!(
                s.p50_secs >= 20_000.0 / 1.25e9 - 1e-12,
                "{}: median query FCT {} below line rate",
                sched.name(),
                s.p50_secs
            );
        }
    }
}

#[test]
fn runs_are_deterministic() {
    // Two fresh schedulers of the same kind on the same seed must produce
    // byte-identical outcomes.
    let (a, b) = (schedulers(8), schedulers(8));
    for (mut sa, mut sb) in a.into_iter().zip(b) {
        let ra = run(sa.as_mut(), 42, 0.9);
        let rb = run(sb.as_mut(), 42, 0.9);
        assert_eq!(ra.arrivals, rb.arrivals, "{}", sa.name());
        assert_eq!(
            ra.throughput.delivered(),
            rb.throughput.delivered(),
            "{}",
            sa.name()
        );
        assert_eq!(ra.completions, rb.completions, "{}", sa.name());
        assert_eq!(ra.leftover_bytes, rb.leftover_bytes, "{}", sa.name());
    }
}

mod random_workloads {
    //! Property tests: exact conservation on *scripted* random workloads,
    //! not just the Poisson generator — adversarial inter-arrival gaps and
    //! sizes that do not divide any slot exercise the engine's epoch-based
    //! drain accounting where rounding noise used to hide.

    use super::*;
    use basrpt::types::{FlowClass, FlowId, HostId, Voq};
    use basrpt::workload::FlowArrival;
    use proptest::prelude::*;

    /// Turns raw generated tuples into a valid, time-ordered arrival
    /// script on the 8-host scaled fabric (no self-loops, non-zero sizes).
    fn scripted(raw: &[(u64, u32, u32, u64)]) -> Vec<FlowArrival> {
        let mut t = SimTime::ZERO;
        raw.iter()
            .enumerate()
            .map(|(i, &(dt_us, s, d, size))| {
                t += SimTime::from_micros(dt_us as f64);
                let src = s % 8;
                let dst = (src + 1 + d % 7) % 8;
                FlowArrival {
                    id: FlowId::new(i as u64),
                    time: t,
                    voq: Voq::new(HostId::new(src), HostId::new(dst)),
                    size: Bytes::new(size),
                    class: FlowClass::Background,
                }
            })
            .collect()
    }

    /// Every crossbar discipline, not just a sample: the conservation
    /// property quantifies over the full set (including RepFlow, whose
    /// crossbar ranking is SRPT's).
    fn disciplines() -> Vec<Box<dyn Scheduler>> {
        schedulers(8)
    }

    proptest! {
        #[test]
        fn bytes_and_flows_are_exactly_conserved(
            raw in prop::collection::vec(
                (0u64..300, 0u32..8, 0u32..7, 1u64..1_000_000),
                1..40,
            )
        ) {
            let arrivals = scripted(&raw);
            let topo = FatTree::scaled(2, 4, 1).expect("valid");
            let config = SimConfig::builder()
                .horizon(SimTime::from_millis(30.0))
                .build();
            for mut sched in disciplines() {
                let r = simulate(&topo, sched.as_mut(), arrivals.clone(), config)
                    .expect("valid simulation");
                prop_assert_eq!(
                    r.arrived_bytes,
                    r.throughput.delivered() + r.leftover_bytes,
                    "{}: arrived != delivered + leftover (exactly)",
                    sched.name()
                );
                prop_assert_eq!(
                    r.completions + r.leftover_flows,
                    r.arrivals,
                    "{}: flow count mismatch",
                    sched.name()
                );
                let delivered = r.cumulative_delivered.values();
                prop_assert!(
                    delivered.windows(2).all(|w| w[0] <= w[1]),
                    "{}: cumulative delivered series must be monotone",
                    sched.name()
                );
                prop_assert_eq!(
                    r.arrivals,
                    arrivals.len(),
                    "{}: every scripted arrival lands before the horizon",
                    sched.name()
                );
            }
        }

        /// The two non-crossbar engines conserve exactly too: fair-share
        /// (water-filled simultaneous transmission) on the scripted
        /// workload, and RepFlow (replication races on an oversubscribed
        /// two-plane fabric) with its exact replica-cancellation
        /// accounting — every replica byte classified as winning, losing,
        /// or still racing, and the base run's conservation untouched.
        #[test]
        fn fair_share_and_repflow_engines_conserve_exactly(
            raw in prop::collection::vec(
                (0u64..300, 0u32..8, 0u32..7, 1u64..1_000_000),
                1..40,
            )
        ) {
            let arrivals = scripted(&raw);
            let config = SimConfig::builder()
                .horizon(SimTime::from_millis(30.0))
                .build();

            let topo = FatTree::scaled(2, 4, 1).expect("valid");
            let fair = simulate_fair_share(&topo, arrivals.clone(), config)
                .expect("valid simulation");
            prop_assert_eq!(
                fair.arrived_bytes,
                fair.throughput.delivered() + fair.leftover_bytes,
                "fair-share: arrived != delivered + leftover (exactly)"
            );
            prop_assert_eq!(
                fair.completions + fair.leftover_flows,
                fair.arrivals,
                "fair-share: flow count mismatch"
            );

            // Hosts 0..8 land in racks 0–1 of the oversubscribed k-ary
            // tree, so the scripted inter-rack flows race replicas.
            let kary = KAryFatTree::builder(4)
                .hosts_per_edge(4)
                .oversubscription(2.0)
                .build()
                .expect("valid");
            let rep = simulate_repflow(
                &kary,
                &mut RepFlow::default(),
                arrivals.clone(),
                config,
            )
            .expect("valid simulation");
            assert_repflow_accounting(&rep, "repflow scripted");
            prop_assert_eq!(rep.run.arrivals, arrivals.len());
        }
    }
}

/// The shared invariant battery (determinism, conservation, work
/// conservation, non-triviality across seeds × topologies) over every
/// discipline — crossbar schedulers, the fair-share engine, and the
/// RepFlow engine. A new `Scheduler` gets the whole set by adding one
/// line here.
/// A named crossbar-scheduler constructor (the `usize` is the host count).
type SchedulerRow = (&'static str, fn(usize) -> Box<dyn Scheduler>);

#[test]
fn invariant_battery_covers_every_discipline() {
    let crossbar: Vec<SchedulerRow> = vec![
        ("SRPT", |_| Box::new(Srpt::new())),
        ("FastBASRPT", |n| Box::new(FastBasrpt::new(2500.0, n))),
        ("FastBASRPT-V0", |n| Box::new(FastBasrpt::new(0.0, n))),
        ("MaxWeight", |_| Box::new(MaxWeight::new())),
        ("FIFO", |_| Box::new(Fifo::new())),
        ("RoundRobin", |_| Box::new(RoundRobin::new())),
        ("ThresholdSRPT", |_| {
            Box::new(ThresholdBacklogSrpt::new(10_000_000))
        }),
        ("RepFlow-ranking", |_| Box::new(RepFlow::default())),
    ];
    for (name, make) in crossbar {
        run_invariant_battery(&ScheduledDiscipline { name, make });
    }
    run_invariant_battery(&FairShareDiscipline);
    run_invariant_battery(&RepFlowDiscipline {
        threshold: basrpt::core::REPFLOW_DEFAULT_THRESHOLD,
    });
}

/// The fair-share engine satisfies the classic identities on the
/// generated workload as well (the battery uses collected arrivals; this
/// pins the streaming-generator path).
#[test]
fn fair_share_conserves_on_generated_traffic() {
    let topo = FatTree::scaled(2, 4, 1).expect("valid");
    let spec = TrafficSpec::scaled(2, 4, 0.9).expect("valid");
    for seed in [1u64, 2] {
        let r = simulate_fair_share(
            &topo,
            spec.generator(seed).expect("valid"),
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.2))
                .build(),
        )
        .expect("valid simulation");
        assert_conserved(&r, &format!("fair-share seed {seed}"));
        assert!(r.completions > 0);
    }
}

#[test]
fn light_load_leaves_nothing_behind() {
    // At 20 % load over 0.2 s every discipline should deliver nearly all
    // bytes (only the most recent arrivals are still in flight).
    for mut sched in schedulers(8) {
        let r = run(sched.as_mut(), 5, 0.2);
        let frac_left = r.leftover_bytes.as_f64() / r.arrived_bytes.as_f64().max(1.0);
        assert!(
            frac_left < 0.2,
            "{} left {:.1}% of bytes at 20% load",
            sched.name(),
            frac_left * 100.0
        );
        assert!(r.throughput.delivered() > Bytes::ZERO);
    }
}
