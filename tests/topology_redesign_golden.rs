//! Golden pin for the paper topology across the Topology API redesign.
//!
//! The PR that introduced the `Topology` trait (parameterized k-ary
//! fat-trees, sharded execution) rewired every layer the paper fabric
//! passes through: the topology type, the engine's capacity queries, the
//! core-budget filter, and the builder. This file pins
//! `FatTree::paper_topology()` runs **bit-for-bit** to fixtures harvested
//! from the pre-redesign engine (PR 6, commit `2cbf054`), so the redesign
//! provably did not shift a single observable of the paper's fabric.
//!
//! To regenerate after an *intentional* behaviour change, run
//!
//! ```sh
//! BASRPT_GOLDEN_PRINT=1 cargo test --release --test topology_redesign_golden -- --nocapture
//! ```
//!
//! and paste the printed fixture blocks over the constants below.

use basrpt::core::{FastBasrpt, Scheduler, Srpt};
use basrpt::fabric::{simulate, FabricRun, FatTree, SimConfig};
use basrpt::metrics::TimeSeries;
use basrpt::types::{FlowClass, SimTime};
use basrpt::workload::TrafficSpec;

/// One run's pinned observables.
#[derive(Debug, PartialEq)]
struct Golden {
    arrivals: usize,
    completions: usize,
    arrived_bytes: u64,
    delivered_bytes: u64,
    leftover_bytes: u64,
    /// FNV-1a fingerprint over all four sampled series (times and values
    /// as exact f64 bits).
    series_fnv: u64,
    /// Mean background-flow FCT in seconds, as exact f64 bits.
    bg_mean_fct_bits: u64,
    /// Mean query-flow FCT in seconds, as exact f64 bits.
    query_mean_fct_bits: u64,
}

fn fnv(h: &mut u64, bits: u64) {
    for b in bits.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn series_hash(h: &mut u64, ts: &TimeSeries) {
    fnv(h, ts.len() as u64);
    for (&t, &v) in ts.times().iter().zip(ts.values()) {
        fnv(h, t.to_bits());
        fnv(h, v.to_bits());
    }
}

fn golden_of(run: &FabricRun) -> Golden {
    let mut h = 0xcbf29ce484222325u64;
    series_hash(&mut h, &run.total_backlog);
    series_hash(&mut h, &run.monitored_port_backlog);
    series_hash(&mut h, &run.max_port_backlog);
    series_hash(&mut h, &run.cumulative_delivered);
    Golden {
        arrivals: run.arrivals,
        completions: run.completions,
        arrived_bytes: run.arrived_bytes.as_u64(),
        delivered_bytes: run.throughput.delivered().as_u64(),
        leftover_bytes: run.leftover_bytes.as_u64(),
        series_fnv: h,
        bg_mean_fct_bits: run
            .fct
            .summary(FlowClass::Background)
            .expect("background flows complete")
            .mean_secs
            .to_bits(),
        query_mean_fct_bits: run
            .fct
            .summary(FlowClass::Query)
            .expect("query flows complete")
            .mean_secs
            .to_bits(),
    }
}

fn print_fixture(label: &str, g: &Golden) {
    println!(
        "const {label}: Golden = Golden {{\n    \
         arrivals: {},\n    completions: {},\n    arrived_bytes: {},\n    \
         delivered_bytes: {},\n    leftover_bytes: {},\n    \
         series_fnv: 0x{:016x},\n    \
         bg_mean_fct_bits: 0x{:016x},\n    \
         query_mean_fct_bits: 0x{:016x},\n}};",
        g.arrivals,
        g.completions,
        g.arrived_bytes,
        g.delivered_bytes,
        g.leftover_bytes,
        g.series_fnv,
        g.bg_mean_fct_bits,
        g.query_mean_fct_bits,
    );
}

fn harvesting() -> bool {
    std::env::var("BASRPT_GOLDEN_PRINT").is_ok()
}

fn paper_run(scheduler: &mut dyn Scheduler, seed: u64) -> FabricRun {
    let topo = FatTree::paper_topology();
    assert_eq!(topo.num_hosts(), 144, "the paper fabric has 144 hosts");
    let spec = TrafficSpec::paper_default(0.8).unwrap();
    let config = SimConfig::builder()
        .horizon(SimTime::from_millis(5.0))
        .build();
    simulate(&topo, scheduler, spec.generator(seed).unwrap(), config).unwrap()
}

const SRPT_SEED1: Golden = Golden {
    arrivals: 4015,
    completions: 3915,
    arrived_bytes: 811494952,
    delivered_bytes: 272680779,
    leftover_bytes: 538814173,
    series_fnv: 0x1cd9e0198457a6e5,
    bg_mean_fct_bits: 0x3f35431198802f0d,
    query_mean_fct_bits: 0x3ef24f57bf7a3f8d,
};

const SRPT_SEED2: Golden = Golden {
    arrivals: 3991,
    completions: 3895,
    arrived_bytes: 712833875,
    delivered_bytes: 285670668,
    leftover_bytes: 427163207,
    series_fnv: 0x3a238fea1c394230,
    bg_mean_fct_bits: 0x3f3663e0b43a3929,
    query_mean_fct_bits: 0x3ef273421c036264,
};

const FAST_BASRPT_SEED1: Golden = Golden {
    arrivals: 4015,
    completions: 2787,
    arrived_bytes: 811494952,
    delivered_bytes: 275547069,
    leftover_bytes: 535947883,
    series_fnv: 0x1117662cab80ab1e,
    bg_mean_fct_bits: 0x3f387c75fba05239,
    query_mean_fct_bits: 0x3f2e8ba3a0fb7802,
};

#[test]
fn paper_topology_runs_match_pre_redesign_goldens() {
    type MakeSched = Box<dyn Fn() -> Box<dyn Scheduler>>;
    let cases: [(&str, MakeSched, u64, &Golden); 3] = [
        (
            "SRPT_SEED1",
            Box::new(|| Box::new(Srpt::new())),
            1,
            &SRPT_SEED1,
        ),
        (
            "SRPT_SEED2",
            Box::new(|| Box::new(Srpt::new())),
            2,
            &SRPT_SEED2,
        ),
        (
            "FAST_BASRPT_SEED1",
            Box::new(|| Box::new(FastBasrpt::new(2500.0 * 8.0 / 144.0, 144))),
            1,
            &FAST_BASRPT_SEED1,
        ),
    ];
    for (label, make, seed, want) in cases {
        let got = golden_of(&paper_run(make().as_mut(), seed));
        if harvesting() {
            print_fixture(label, &got);
        } else {
            assert_eq!(&got, want, "{label}: paper-topology run drifted");
        }
    }
}
