//! Differential tests for the max-min fair-share fabric engine.
//!
//! `dcn_fabric::simulate_fair_share` is the production engine: the
//! incremental `FairShareAllocator` (per-flow constraint lists, compacted
//! live set, targeted calendar updates) driving the delta-style fair
//! event loop. `dcn_fabric::reference::simulate_fair_share_naive` is a
//! genuinely different implementation: an `O(n·C)`-per-round water-filler
//! that rescans every flow for every constraint, with a linear completion
//! scan. Both follow the canonical water-filling arithmetic contract
//! spelled out in the `fairshare` module docs, so every observable —
//! byte counters, FCT summary bits, sampled-series fingerprints, full
//! probe event streams — must match **bit for bit** across seeds ×
//! {full-bisection fat-tree, oversubscribed k-ary fat-tree}.
//!
//! The sharded path is pinned too: fair-share constraints couple flows
//! only within rack-connected components, so
//! `simulate_fair_share_sharded` must reproduce the global engine's
//! observables exactly for every shard count (`BASRPT_SHARDS ∈ {1, 4}`
//! in CI, plus whatever the environment requests).

mod support;

use basrpt::fabric::{
    reference, shards_from_env, simulate_fair_share, simulate_fair_share_probed,
    simulate_fair_share_sharded, FatTree, KAryFatTree, SimConfig, Topology,
};
use basrpt::types::SimTime;
use basrpt::workload::{FlowArrival, TrafficSpec};
use support::conservation::{assert_bit_identical, assert_conserved, assert_observables_identical};
use support::fingerprint::FnvProbe;

/// The two topologies the matrix quantifies over: NIC-only constraints on
/// the full-bisection paper fabric, and binding rack up/downlink budgets
/// on a 2:1 oversubscribed k-ary fat-tree.
fn topologies() -> Vec<(&'static str, Box<dyn Topology + Sync>)> {
    let paper = FatTree::scaled(2, 4, 1).expect("valid scaled fat-tree");
    let kary = KAryFatTree::builder(4)
        .hosts_per_edge(2)
        .oversubscription(2.0)
        .build()
        .expect("valid k-ary parameters");
    vec![
        ("fat-tree-8", Box::new(paper)),
        ("kary-4-oversub", Box::new(kary)),
    ]
}

fn arrivals_for(topo: &dyn Topology, load: f64, seed: u64, horizon: SimTime) -> Vec<FlowArrival> {
    TrafficSpec::scaled(topo.num_racks(), topo.hosts_per_rack(), load)
        .expect("valid scaled spec")
        .generator(seed)
        .expect("valid generator")
        .take_while(|a| a.time < horizon)
        .collect()
}

fn config(horizon_secs: f64) -> SimConfig {
    SimConfig::builder()
        .horizon(SimTime::from_secs(horizon_secs))
        .build()
}

/// Seeds 1..=3 × topologies: the incremental allocator and the naive
/// `O(n²)` reference water-filler produce the same run to the last bit —
/// summaries, FCT bits, series fingerprints, and the full probe event
/// stream (arrivals, every drain, completions, samples, in order).
#[test]
fn production_matches_naive_reference_bitwise() {
    for (topo_name, topo) in &topologies() {
        for seed in 1..=3u64 {
            let label = format!("{topo_name}/seed{seed}");
            let cfg = config(0.05);
            let arrivals = arrivals_for(topo.as_ref(), 0.85, seed, cfg.horizon);
            let mut fast_probe = FnvProbe::new();
            let fast =
                simulate_fair_share_probed(topo.as_ref(), arrivals.clone(), cfg, &mut fast_probe)
                    .expect("valid simulation");
            let mut naive_probe = FnvProbe::new();
            let naive = reference::simulate_fair_share_naive_probed(
                topo.as_ref(),
                arrivals,
                cfg,
                &mut naive_probe,
            )
            .expect("valid simulation");
            assert_bit_identical(&fast, &naive, &label);
            assert_eq!(
                fast_probe.hash, naive_probe.hash,
                "{label}: probe event streams must be identical"
            );
            assert_conserved(&fast, &label);
            assert!(fast.completions > 0, "{label}: non-trivial run");
        }
    }
}

/// Fair-share is rack-separable: the sharded engine reproduces the
/// global engine's observables bit for bit at every shard count
/// (reschedule counts excepted — they are per-bin sums by construction).
#[test]
fn sharded_matches_global_across_shard_counts() {
    for (topo_name, topo) in &topologies() {
        for seed in [1u64, 2] {
            let cfg = config(0.05);
            let arrivals = arrivals_for(topo.as_ref(), 0.85, seed, cfg.horizon);
            let global = simulate_fair_share(topo.as_ref(), arrivals.clone(), cfg)
                .expect("valid simulation");
            let mut shard_counts = vec![1usize, 4];
            let from_env = shards_from_env();
            if !shard_counts.contains(&from_env) {
                shard_counts.push(from_env);
            }
            for shards in shard_counts {
                let label = format!("{topo_name}/seed{seed}/shards{shards}");
                let sharded =
                    simulate_fair_share_sharded(topo.as_ref(), arrivals.clone(), cfg, shards)
                        .expect("valid simulation");
                assert_observables_identical(&sharded.run, &global, &label);
                assert!(
                    sharded
                        .completion_log
                        .windows(2)
                        .all(|w| (w[0].time.as_secs(), w[0].flow)
                            <= (w[1].time.as_secs(), w[1].flow)),
                    "{label}: completion log must be (time, flow)-sorted"
                );
            }
        }
    }
}

mod scripted {
    //! Property test: the two water-fillers agree on adversarial scripted
    //! workloads too — bursts of simultaneous arrivals, degenerate sizes,
    //! and flows that tie on fill levels exercise the freeze-marking
    //! arithmetic beyond what Poisson traffic reaches.

    use super::*;
    use basrpt::types::{Bytes, FlowClass, FlowId, HostId, Voq};
    use proptest::prelude::*;

    fn scripted(raw: &[(u64, u32, u32, u64)]) -> Vec<FlowArrival> {
        let mut t = SimTime::ZERO;
        raw.iter()
            .enumerate()
            .map(|(i, &(dt_us, s, d, size))| {
                t += SimTime::from_micros(dt_us as f64);
                let src = s % 8;
                let dst = (src + 1 + d % 7) % 8;
                FlowArrival {
                    id: FlowId::new(i as u64),
                    time: t,
                    voq: Voq::new(HostId::new(src), HostId::new(dst)),
                    size: Bytes::new(size),
                    class: FlowClass::Background,
                }
            })
            .collect()
    }

    proptest! {
        #[test]
        fn water_fillers_agree_on_scripted_workloads(
            raw in prop::collection::vec(
                // dt 0 makes simultaneous-arrival bursts common; small
                // sizes make completion ties common.
                (0u64..150, 0u32..8, 0u32..7, 1u64..500_000),
                1..30,
            )
        ) {
            let arrivals = scripted(&raw);
            let cfg = SimConfig::builder()
                .horizon(SimTime::from_millis(20.0))
                .build();
            for (topo_name, topo) in &topologies() {
                let fast = simulate_fair_share(topo.as_ref(), arrivals.clone(), cfg)
                    .expect("valid simulation");
                let naive = reference::simulate_fair_share_naive(
                    topo.as_ref(),
                    arrivals.clone(),
                    cfg,
                )
                .expect("valid simulation");
                assert_bit_identical(&fast, &naive, topo_name);
                let sharded = simulate_fair_share_sharded(
                    topo.as_ref(),
                    arrivals.clone(),
                    cfg,
                    4,
                )
                .expect("valid simulation");
                assert_observables_identical(&sharded.run, &fast, topo_name);
            }
        }
    }
}
