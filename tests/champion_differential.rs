//! Differential tests pinning the champion-indexed schedulers to the
//! full-scan reference.
//!
//! The `FlowTable` maintains a per-VOQ champion index (shortest / oldest
//! flow plus backlog aggregates, repaired incrementally on every insert,
//! drain, and removal); `schedule_champions`, the key-driven disciplines,
//! and `IncrementalScheduler` all read their candidates from it.
//! `basrpt_core::reference::ScanScheduler` instead recomputes every
//! champion with an `O(F)` scan per decision and shares none of the
//! index's state. Running both through the same simulators must produce
//! **bit-identical** observables — completion records, sampled series,
//! the penalty/backlog accumulators, and (through a probe that hashes the
//! full event stream) every per-slot decision and drain, tie-breaks
//! included. The technique is the same as `tests/fastforward_differential.rs`;
//! here the variable is the candidate source, not the engine, and the
//! suite quantifies over both engines and both substrates.

use basrpt::core::reference::ScanScheduler;
use basrpt::core::{
    FastBasrpt, Fifo, IncrementalScheduler, MaxWeight, Scheduler, Srpt, ThresholdBacklogSrpt,
};
use basrpt::fabric::{FabricSim, FatTree, SimConfig};
use basrpt::probe::{ArrivalEvent, CompletionEvent, DecisionEvent, DrainEvent, Probe, SampleEvent};
use basrpt::switch::arrivals::BernoulliFlowArrivals;
use basrpt::switch::{run_probed_with_engine, Engine, RunConfig, ScriptedArrivals, SwitchRun};
use basrpt::types::{HostId, SimTime, Voq};
use basrpt::workload::TrafficSpec;

fn voq(src: u32, dst: u32) -> Voq {
    Voq::new(HostId::new(src), HostId::new(dst))
}

fn fnv(h: &mut u64, bits: u64) {
    for b in bits.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// Hashes the complete event stream in arrival order (decision latencies
/// excluded — only the scan twin pays measurable decision time).
struct StreamRecorder {
    h: u64,
    events: u64,
}

impl StreamRecorder {
    fn new() -> Self {
        StreamRecorder {
            h: 0xcbf29ce484222325,
            events: 0,
        }
    }
}

impl Probe for StreamRecorder {
    fn wants_decision_timing(&self) -> bool {
        false
    }

    fn on_arrival(&mut self, e: &ArrivalEvent) {
        self.events += 1;
        fnv(&mut self.h, 1);
        fnv(&mut self.h, e.time.to_bits());
        fnv(&mut self.h, e.flow.raw());
        fnv(&mut self.h, e.voq.src().index() as u64);
        fnv(&mut self.h, e.voq.dst().index() as u64);
        fnv(&mut self.h, e.size);
    }

    fn on_drain(&mut self, e: &DrainEvent) {
        self.events += 1;
        fnv(&mut self.h, 2);
        fnv(&mut self.h, e.time.to_bits());
        fnv(&mut self.h, e.flow.raw());
        fnv(&mut self.h, e.voq.src().index() as u64);
        fnv(&mut self.h, e.voq.dst().index() as u64);
        fnv(&mut self.h, e.amount);
    }

    fn on_completion(&mut self, e: &CompletionEvent) {
        self.events += 1;
        fnv(&mut self.h, 3);
        fnv(&mut self.h, e.time.to_bits());
        fnv(&mut self.h, e.flow.raw());
        fnv(&mut self.h, e.size);
        fnv(&mut self.h, e.fct.to_bits());
    }

    fn on_decision(&mut self, e: &DecisionEvent<'_>) {
        self.events += 1;
        fnv(&mut self.h, 4);
        fnv(&mut self.h, e.time.to_bits());
        fnv(&mut self.h, e.schedule.len() as u64);
        for (id, q) in e.schedule.iter() {
            fnv(&mut self.h, id.raw());
            fnv(&mut self.h, q.src().index() as u64);
            fnv(&mut self.h, q.dst().index() as u64);
        }
    }

    fn on_sample(&mut self, e: &SampleEvent<'_>) {
        self.events += 1;
        fnv(&mut self.h, 5);
        fnv(&mut self.h, e.time.to_bits());
        fnv(&mut self.h, e.table.total_backlog());
        fnv(&mut self.h, e.delivered.to_bits());
    }
}

fn assert_runs_identical(indexed: &SwitchRun, scan: &SwitchRun, label: &str) {
    assert_eq!(
        indexed.completions, scan.completions,
        "{label}: completions"
    );
    assert_eq!(
        indexed.delivered_packets, scan.delivered_packets,
        "{label}: delivered packets"
    );
    assert_eq!(
        indexed.leftover_packets, scan.leftover_packets,
        "{label}: leftover packets"
    );
    assert_eq!(
        indexed.leftover_flows, scan.leftover_flows,
        "{label}: leftover flows"
    );
    assert_eq!(
        indexed.total_backlog, scan.total_backlog,
        "{label}: total backlog series"
    );
    assert_eq!(
        indexed.max_port_backlog, scan.max_port_backlog,
        "{label}: max port backlog series"
    );
    assert_eq!(indexed.lyapunov, scan.lyapunov, "{label}: Lyapunov series");
    assert_eq!(
        indexed.avg_penalty.to_bits(),
        scan.avg_penalty.to_bits(),
        "{label}: avg penalty must be bit-exact"
    );
    assert_eq!(
        indexed.avg_total_backlog.to_bits(),
        scan.avg_total_backlog.to_bits(),
        "{label}: avg total backlog must be bit-exact"
    );
}

/// `(name, indexed scheduler, full-scan twin)` for every key-driven
/// discipline, both fast-BASRPT validity classes (integer weight →
/// unbounded windows, fractional weight → one-slot windows), and the
/// incremental scheduler over two inner disciplines. `RoundRobin` and
/// `ExactBasrpt` are excluded by design: neither ranks VOQ champions, so
/// no scan twin exists for them.
type SchedulerPair = (&'static str, Box<dyn Scheduler>, Box<dyn Scheduler>);

fn pairs() -> Vec<SchedulerPair> {
    vec![
        (
            "srpt",
            Box::new(Srpt::new()),
            Box::new(ScanScheduler::new(Srpt::new())),
        ),
        (
            "fifo",
            Box::new(Fifo::new()),
            Box::new(ScanScheduler::new(Fifo::new())),
        ),
        (
            "maxweight",
            Box::new(MaxWeight::new()),
            Box::new(ScanScheduler::new(MaxWeight::new())),
        ),
        (
            "threshold15",
            Box::new(ThresholdBacklogSrpt::new(15)),
            Box::new(ScanScheduler::new(ThresholdBacklogSrpt::new(15))),
        ),
        (
            "fast_basrpt_w2",
            Box::new(FastBasrpt::new(16.0, 8)),
            Box::new(ScanScheduler::new(FastBasrpt::new(16.0, 8))),
        ),
        (
            "fast_basrpt_w05",
            Box::new(FastBasrpt::new(4.0, 8)),
            Box::new(ScanScheduler::new(FastBasrpt::new(4.0, 8))),
        ),
        (
            "incremental_srpt",
            Box::new(IncrementalScheduler::new(Srpt::new())),
            Box::new(ScanScheduler::new(Srpt::new())),
        ),
        (
            "incremental_fast_basrpt_w2",
            Box::new(IncrementalScheduler::new(FastBasrpt::new(16.0, 8))),
            Box::new(ScanScheduler::new(FastBasrpt::new(16.0, 8))),
        ),
    ]
}

fn compare_on_engine(
    label: &str,
    engine: Engine,
    indexed: &mut dyn Scheduler,
    scan: &mut dyn Scheduler,
    script: Vec<(u64, Voq, u64)>,
    config: RunConfig,
) {
    let mut idx_rec = StreamRecorder::new();
    let idx_run = run_probed_with_engine(
        engine,
        8,
        indexed,
        &mut ScriptedArrivals::new(script.clone()),
        config,
        &mut idx_rec,
    );
    let mut scan_rec = StreamRecorder::new();
    let scan_run = run_probed_with_engine(
        engine,
        8,
        scan,
        &mut ScriptedArrivals::new(script),
        config,
        &mut scan_rec,
    );
    assert_runs_identical(&idx_run, &scan_run, label);
    assert_eq!(idx_rec.events, scan_rec.events, "{label}: event counts");
    assert_eq!(idx_rec.h, scan_rec.h, "{label}: event stream hash");
}

/// A fixed workload with bursts, same-VOQ pileups (champion displacement),
/// port contention, and late stragglers — under every discipline pair,
/// both engines, and two sampling periods.
#[test]
fn indexed_matches_scan_on_a_contended_script() {
    let script = vec![
        (0u64, voq(0, 1), 60u64),
        (0, voq(0, 1), 9), // same VOQ: displaces the champion
        (0, voq(2, 1), 45),
        (0, voq(1, 0), 30),
        (10, voq(3, 4), 25),
        (11, voq(4, 3), 5),
        (12, voq(3, 4), 25), // duplicate size: id tie-break decides
        (150, voq(0, 1), 40),
        (400, voq(5, 6), 12),
    ];
    for config in [
        RunConfig {
            slots: 600,
            sample_every: 1,
        },
        RunConfig {
            slots: 600,
            sample_every: 97,
        },
    ] {
        for engine in [Engine::SlotBySlot, Engine::FastForward] {
            for (name, mut indexed, mut scan) in pairs() {
                compare_on_engine(
                    &format!("{name}/{engine:?}/sample_every={}", config.sample_every),
                    engine,
                    indexed.as_mut(),
                    scan.as_mut(),
                    script.clone(),
                    config,
                );
            }
        }
    }
}

/// Bernoulli arrivals: sustained random load where ids are recycled
/// through completions and champions churn every slot, on the
/// fast-forward engine (whose cursor interplay with the change log is the
/// more delicate path).
#[test]
fn indexed_matches_scan_under_bernoulli_load() {
    for seed in [1u64, 7] {
        for (name, mut indexed, mut scan) in pairs() {
            let mut idx_rec = StreamRecorder::new();
            let idx_run = run_probed_with_engine(
                Engine::FastForward,
                8,
                indexed.as_mut(),
                &mut BernoulliFlowArrivals::uniform(8, 0.6, 10, seed).unwrap(),
                RunConfig::new(1_500),
                &mut idx_rec,
            );
            let mut scan_rec = StreamRecorder::new();
            let scan_run = run_probed_with_engine(
                Engine::FastForward,
                8,
                scan.as_mut(),
                &mut BernoulliFlowArrivals::uniform(8, 0.6, 10, seed).unwrap(),
                RunConfig::new(1_500),
                &mut scan_rec,
            );
            assert_runs_identical(&idx_run, &scan_run, &format!("{name}/seed{seed}"));
            assert_eq!(idx_rec.h, scan_rec.h, "{name}/seed{seed}: stream hash");
            assert!(
                idx_run.completions.len() > 10,
                "{name}/seed{seed}: non-trivial run"
            );
        }
    }
}

/// The flow-level fabric substrate: byte-granular drains, event-driven
/// reschedules, and a fat-tree topology. Indexed and scan twins must
/// produce the same event stream hash and the same aggregates.
#[test]
fn fabric_substrate_pins_indexed_to_scan() {
    let topo = FatTree::scaled(2, 4, 1).unwrap();
    let spec = TrafficSpec::scaled(2, 4, 0.9).unwrap();
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.05))
        .build();
    for (name, mut indexed, mut scan) in pairs() {
        let mut idx_rec = StreamRecorder::new();
        let idx_run = FabricSim::new(&topo)
            .config(config)
            .scheduler(indexed.as_mut())
            .workload(spec.generator(11).unwrap())
            .probe(&mut idx_rec)
            .run()
            .unwrap();
        let mut scan_rec = StreamRecorder::new();
        let scan_run = FabricSim::new(&topo)
            .config(config)
            .scheduler(scan.as_mut())
            .workload(spec.generator(11).unwrap())
            .probe(&mut scan_rec)
            .run()
            .unwrap();
        assert_eq!(idx_run.arrivals, scan_run.arrivals, "{name}: arrivals");
        assert_eq!(
            idx_run.completions, scan_run.completions,
            "{name}: completions"
        );
        assert_eq!(
            idx_run.leftover_bytes, scan_run.leftover_bytes,
            "{name}: leftover bytes"
        );
        assert_eq!(
            idx_run.leftover_flows, scan_run.leftover_flows,
            "{name}: leftover flows"
        );
        assert_eq!(
            idx_run.reschedules, scan_run.reschedules,
            "{name}: reschedules"
        );
        assert_eq!(idx_rec.events, scan_rec.events, "{name}: event counts");
        assert_eq!(idx_rec.h, scan_rec.h, "{name}: fabric event stream hash");
        assert!(idx_run.completions > 0, "{name}: non-trivial fabric run");
    }
}

mod random_workloads {
    //! Property tests: the indexed scheduler on the fast-forward engine
    //! vs the scan twin on the slot-by-slot reference — one comparison
    //! covering both the candidate source and the engine at once, on
    //! random scripts with same-slot pileups and boundary-straddling
    //! sizes.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn indexed_fastforward_matches_scan_reference(
            raw in prop::collection::vec(
                (0u64..100, 0u32..8, 0u32..7, 1u64..60),
                1..20,
            ),
            sample_every in 1u64..64,
        ) {
            let mut slot = 0u64;
            let script: Vec<(u64, Voq, u64)> = raw
                .iter()
                .map(|&(gap, s, d, size)| {
                    slot += gap;
                    let src = s % 8;
                    let dst = (src + 1 + d % 7) % 8;
                    (slot, voq(src, dst), size)
                })
                .collect();
            let config = RunConfig {
                slots: slot + 300,
                sample_every,
            };
            for (name, mut indexed, mut scan) in pairs() {
                let mut idx_rec = StreamRecorder::new();
                let idx_run = run_probed_with_engine(
                    Engine::FastForward,
                    8,
                    indexed.as_mut(),
                    &mut ScriptedArrivals::new(script.clone()),
                    config,
                    &mut idx_rec,
                );
                let mut scan_rec = StreamRecorder::new();
                let scan_run = run_probed_with_engine(
                    Engine::SlotBySlot,
                    8,
                    scan.as_mut(),
                    &mut ScriptedArrivals::new(script.clone()),
                    config,
                    &mut scan_rec,
                );
                prop_assert_eq!(&idx_run.completions, &scan_run.completions, "{}: completions", name);
                prop_assert_eq!(
                    idx_run.delivered_packets,
                    scan_run.delivered_packets,
                    "{}: delivered",
                    name
                );
                prop_assert_eq!(
                    idx_run.avg_penalty.to_bits(),
                    scan_run.avg_penalty.to_bits(),
                    "{}: avg penalty",
                    name
                );
                prop_assert_eq!(
                    &idx_run.total_backlog,
                    &scan_run.total_backlog,
                    "{}: series",
                    name
                );
                prop_assert_eq!(idx_rec.h, scan_rec.h, "{}: stream hash", name);
            }
        }
    }
}
