//! Golden regression snapshots for the single-seed Fig. 2 and Table I
//! experiment pipelines.
//!
//! Both simulators are seeded and deterministic ("rerunning any bench
//! reproduces the numbers bit-for-bit on the same toolchain" —
//! EXPERIMENTS.md), so the exact outputs of the experiment configurations
//! can be pinned as in-repo fixtures: any refactor that silently perturbs
//! the workload generator, the engine's drain accounting, a discipline's
//! key, or the metrics pipeline trips these assertions instead of quietly
//! shifting recorded results.
//!
//! The fixtures use the *default-scale* fabric and workload exactly as the
//! `fig2` / `table1` benches construct them (16-host fat-tree, same loads,
//! same seeds, same latency floor) with reduced horizons: debug-mode
//! simulation costs ~12 wall-seconds per simulated second at this scale,
//! so the benches' 25 s / 8 s horizons would take ~13 minutes of test
//! time; 1.0 s and 0.5 s keep the whole file around a minute while
//! exercising the identical pipeline (hundreds of thousands of events).
//!
//! To regenerate after an *intentional* behaviour change, run
//!
//! ```sh
//! BASRPT_GOLDEN_PRINT=1 cargo test --test figure_golden -- --nocapture
//! ```
//!
//! and paste the printed fixture blocks over the constants below.

use basrpt::core::{Scheduler, Srpt, ThresholdBacklogSrpt};
use basrpt::fabric::{FabricRun, SimConfig};
use basrpt::types::{FlowClass, SimTime};
use basrpt_bench::{paper_equivalent_fast_basrpt, run_fabric_with, Scale, FCT_BASE_LATENCY_US};

/// One discipline's pinned observables.
#[derive(Debug, PartialEq)]
struct Golden {
    arrivals: usize,
    completions: usize,
    arrived_bytes: u64,
    delivered_bytes: u64,
    leftover_bytes: u64,
    /// Final sample of the fabric-wide backlog series, as exact f64 bits.
    final_total_backlog_bits: u64,
    /// Mean background-flow FCT in seconds, as exact f64 bits.
    bg_mean_fct_bits: u64,
    /// Mean query-flow FCT in seconds, as exact f64 bits — the
    /// query/background split is Table I's entire point, and Fig. 2 uses
    /// the same two-class workload.
    query_mean_fct_bits: u64,
}

fn golden_of(run: &FabricRun) -> Golden {
    Golden {
        arrivals: run.arrivals,
        completions: run.completions,
        arrived_bytes: run.arrived_bytes.as_u64(),
        delivered_bytes: run.throughput.delivered().as_u64(),
        leftover_bytes: run.leftover_bytes.as_u64(),
        final_total_backlog_bits: run
            .total_backlog
            .values()
            .last()
            .copied()
            .unwrap_or(0.0)
            .to_bits(),
        bg_mean_fct_bits: run
            .fct
            .summary(FlowClass::Background)
            .expect("background flows complete")
            .mean_secs
            .to_bits(),
        query_mean_fct_bits: run
            .fct
            .summary(FlowClass::Query)
            .expect("query flows complete")
            .mean_secs
            .to_bits(),
    }
}

fn print_fixture(label: &str, g: &Golden) {
    println!(
        "const {label}: Golden = Golden {{\n    \
         arrivals: {},\n    completions: {},\n    arrived_bytes: {},\n    \
         delivered_bytes: {},\n    leftover_bytes: {},\n    \
         final_total_backlog_bits: 0x{:016x},\n    \
         bg_mean_fct_bits: 0x{:016x},\n    \
         query_mean_fct_bits: 0x{:016x},\n}};",
        g.arrivals,
        g.completions,
        g.arrived_bytes,
        g.delivered_bytes,
        g.leftover_bytes,
        g.final_total_backlog_bits,
        g.bg_mean_fct_bits,
        g.query_mean_fct_bits,
    );
}

fn harvesting() -> bool {
    std::env::var("BASRPT_GOLDEN_PRINT").is_ok()
}

fn check(label: &str, const_name: &str, run: &FabricRun, expected: &Golden) {
    let actual = golden_of(run);
    if harvesting() {
        print_fixture(const_name, &actual);
        return;
    }
    assert_eq!(
        &actual, expected,
        "{label}: run deviates from the pinned fixture — if the change is \
         intentional, regenerate with BASRPT_GOLDEN_PRINT=1 (see module doc)"
    );
}

// === Fig. 2 pipeline: seed 1, 92 % load, default-scale fabric ===========

const FIG2_SRPT: Golden = Golden {
    arrivals: 101305,
    completions: 101168,
    arrived_bytes: 18479075223,
    delivered_bytes: 16697548300,
    leftover_bytes: 1781526923,
    final_total_backlog_bits: 0x41da8bfc62c00000,
    bg_mean_fct_bits: 0x3f7d7025c9e84d19,
    query_mean_fct_bits: 0x3ef29c6630942373,
};

const FIG2_THRESHOLD: Golden = Golden {
    arrivals: 101305,
    completions: 99715,
    arrived_bytes: 18479075223,
    delivered_bytes: 16795570167,
    leftover_bytes: 1683505056,
    final_total_backlog_bits: 0x41d9160fe8000000,
    bg_mean_fct_bits: 0x3f80ab1281126b7f,
    query_mean_fct_bits: 0x3f6569009f395575,
};

/// The Fig.-2 single-seed configuration (seed 1, 0.92 load, 50 MB
/// threshold), horizon reduced to 1.0 s as explained in the module doc.
#[test]
fn fig2_single_seed_outputs_are_pinned() {
    let scale = Scale::Default;
    let topo = scale.topology();
    let spec = scale.spec(0.92).expect("valid load");
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(1.0))
        .build();
    let cases: Vec<(&str, &str, Box<dyn Scheduler>, &Golden)> = vec![
        ("fig2/srpt", "FIG2_SRPT", Box::new(Srpt::new()), &FIG2_SRPT),
        (
            "fig2/threshold",
            "FIG2_THRESHOLD",
            Box::new(ThresholdBacklogSrpt::new(50_000_000)),
            &FIG2_THRESHOLD,
        ),
    ];
    for (label, const_name, mut sched, expected) in cases {
        let run = run_fabric_with(&topo, &spec, sched.as_mut(), 1, config);
        check(label, const_name, &run, expected);
    }
}

// === Table I pipeline: seed 7, 95 % load, 100 µs latency floor ==========

const TABLE1_SRPT: Golden = Golden {
    arrivals: 52246,
    completions: 52142,
    arrived_bytes: 8915253285,
    delivered_bytes: 7859119933,
    leftover_bytes: 1056133352,
    final_total_backlog_bits: 0x41cf79a874000000,
    bg_mean_fct_bits: 0x3f74fe5c3a7c70dd,
    query_mean_fct_bits: 0x3f1ee2c235c7cefe,
};

const TABLE1_FAST_BASRPT: Golden = Golden {
    arrivals: 52246,
    completions: 52104,
    arrived_bytes: 8915253285,
    delivered_bytes: 7894239957,
    leftover_bytes: 1021013328,
    final_total_backlog_bits: 0x41ce6db6a8000000,
    bg_mean_fct_bits: 0x3f745f0bed113eef,
    query_mean_fct_bits: 0x3f324a689659c7e8,
};

/// The Table-I single-seed configuration (seed 7, saturating load,
/// paper-equivalent V = 2500), horizon reduced to 0.5 s.
#[test]
fn table1_single_seed_outputs_are_pinned() {
    let scale = Scale::Default;
    let topo = scale.topology();
    let spec = scale.spec(scale.saturating_load()).expect("valid load");
    let n = topo.num_hosts() as usize;
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.5))
        .base_latency(SimTime::from_micros(FCT_BASE_LATENCY_US))
        .build();
    let cases: Vec<(&str, &str, Box<dyn Scheduler>, &Golden)> = vec![
        (
            "table1/srpt",
            "TABLE1_SRPT",
            Box::new(Srpt::new()),
            &TABLE1_SRPT,
        ),
        (
            "table1/fast_basrpt",
            "TABLE1_FAST_BASRPT",
            Box::new(paper_equivalent_fast_basrpt(2500.0, n)),
            &TABLE1_FAST_BASRPT,
        ),
    ];
    for (label, const_name, mut sched, expected) in cases {
        let run = run_fabric_with(&topo, &spec, sched.as_mut(), 7, config);
        check(label, const_name, &run, expected);
    }
}
