//! Property tests for RepFlow's dominance guarantee.
//!
//! RepFlow's replica layer is *subordinate by construction*: replicas
//! transmit only in intervals where their flow was crossbar-matched but
//! plane-rejected, and consume only budget left over after every
//! single-path admission. Two consequences are pinned here across random
//! scripted workloads:
//!
//! * **Dominance** (2+ core planes) — every flow's RepFlow FCT is ≤ its
//!   FCT under single-path ECMP SRPT, bit-for-bit equal whenever no
//!   replica won its race, and the base trajectory (every counter,
//!   series, and event) is bit-identical to the `simulate_ecmp` run.
//! * **Degeneracy** (one core plane) — there is no alternate plane, so
//!   nothing replicates and the whole run collapses, bit for bit, onto
//!   single-path ECMP — which itself collapses onto the aggregate-filter
//!   engine `simulate`.

mod support;

use basrpt::core::{RepFlow, Srpt};
use basrpt::fabric::{
    simulate, simulate_ecmp, simulate_ecmp_probed, simulate_repflow, FatTree, KAryFatTree,
    SimConfig, Topology,
};
use basrpt::probe::{CompletionEvent, Probe};
use basrpt::types::{Bytes, FlowClass, FlowId, HostId, SimTime, Voq};
use basrpt::workload::FlowArrival;
use proptest::prelude::*;
use std::collections::HashMap;
use support::conservation::{assert_bit_identical, assert_repflow_accounting};

/// Captures every completed flow's FCT, for per-flow comparisons.
#[derive(Default)]
struct FctMapProbe {
    fct_of: HashMap<FlowId, f64>,
}

impl Probe for FctMapProbe {
    fn wants_decision_timing(&self) -> bool {
        false
    }
    fn on_completion(&mut self, e: &CompletionEvent) {
        self.fct_of.insert(e.flow, e.fct);
    }
}

/// Scripted arrivals across the first 16 hosts (racks 0–3 of the k-ary
/// tree), sizes biased short so most flows replicate.
fn scripted(raw: &[(u64, u32, u32, u64)]) -> Vec<FlowArrival> {
    let mut t = SimTime::ZERO;
    raw.iter()
        .enumerate()
        .map(|(i, &(dt_us, s, d, size))| {
            t += SimTime::from_micros(dt_us as f64);
            let src = s % 16;
            let dst = (src + 1 + d % 15) % 16;
            FlowArrival {
                id: FlowId::new(i as u64),
                time: t,
                voq: Voq::new(HostId::new(src), HostId::new(dst)),
                size: Bytes::new(size),
                class: FlowClass::Background,
            }
        })
        .collect()
}

/// The dominance fabric: 2:1 oversubscribed, two core planes of one
/// edge-rate flow each, so plane-hash collisions reject flows that the
/// replica layer can then rescue.
fn two_plane_topo() -> KAryFatTree {
    KAryFatTree::builder(4)
        .hosts_per_edge(4)
        .oversubscription(2.0)
        .build()
        .expect("valid k-ary parameters")
}

proptest! {
    /// On 2+ planes: base trajectory bit-identical to ECMP, and for every
    /// completed flow `repflow_fct ≤ ecmp_fct` (bit-equal when no replica
    /// won). Exercised across random scripted workloads with short-biased
    /// sizes.
    #[test]
    fn repflow_dominates_single_path_on_two_planes(
        raw in prop::collection::vec(
            (0u64..200, 0u32..16, 0u32..15, 1u64..400_000),
            1..35,
        )
    ) {
        let topo = two_plane_topo();
        prop_assert!(topo.core_planes() >= 2);
        let arrivals = scripted(&raw);
        let cfg = SimConfig::builder()
            .horizon(SimTime::from_millis(25.0))
            .build();
        let mut ecmp_probe = FctMapProbe::default();
        let ecmp = simulate_ecmp_probed(
            &topo,
            &mut Srpt::new(),
            arrivals.clone(),
            cfg,
            &mut ecmp_probe,
        )
        .expect("valid simulation");
        let rep = simulate_repflow(&topo, &mut RepFlow::default(), arrivals, cfg)
            .expect("valid simulation");
        assert_repflow_accounting(&rep, "two-plane");

        // Base trajectory: bit-identical to the single-path run.
        prop_assert_eq!(rep.run.completions, ecmp.completions);
        prop_assert_eq!(rep.run.arrived_bytes, ecmp.arrived_bytes);
        prop_assert_eq!(rep.run.leftover_bytes, ecmp.leftover_bytes);
        prop_assert_eq!(
            rep.run.throughput.delivered(),
            ecmp.throughput.delivered()
        );
        prop_assert_eq!(&rep.run.total_backlog, &ecmp.total_backlog);
        prop_assert_eq!(&rep.run.cumulative_delivered, &ecmp.cumulative_delivered);

        // Per-flow dominance against the independently-run ECMP engine.
        for c in &rep.completions {
            let ecmp_fct = *ecmp_probe
                .fct_of
                .get(&c.flow)
                .expect("base trajectories complete the same flows");
            prop_assert_eq!(
                c.base_fct.as_secs().to_bits(),
                ecmp_fct.to_bits(),
                "flow {}: base FCT must be the ECMP FCT exactly",
                c.flow
            );
            prop_assert!(
                c.fct.as_secs() <= ecmp_fct,
                "flow {}: RepFlow FCT {} exceeds single-path {}",
                c.flow,
                c.fct.as_secs(),
                ecmp_fct
            );
            if c.winner.is_none() {
                prop_assert_eq!(
                    c.fct.as_secs().to_bits(),
                    ecmp_fct.to_bits(),
                    "flow {}: no winner, FCTs must be bit-equal",
                    c.flow
                );
            }
        }
    }

    /// On one core plane nothing replicates: the RepFlow run, the ECMP
    /// run, and the aggregate-filter `simulate` run are the same run,
    /// bit for bit, and every flow's `fct == base_fct` exactly.
    #[test]
    fn repflow_is_exactly_single_path_on_one_plane(
        raw in prop::collection::vec(
            (0u64..200, 0u32..16, 0u32..15, 1u64..400_000),
            1..25,
        )
    ) {
        // One core: plane filter degenerates to the aggregate budget.
        let topo = FatTree::scaled(4, 4, 1).expect("valid");
        prop_assert_eq!(topo.core_planes(), 1);
        let arrivals = scripted(&raw);
        let cfg = SimConfig::builder()
            .horizon(SimTime::from_millis(25.0))
            .enforce_core_capacity(true)
            .build();
        let base = simulate(&topo, &mut Srpt::new(), arrivals.clone(), cfg)
            .expect("valid simulation");
        let ecmp = simulate_ecmp(&topo, &mut Srpt::new(), arrivals.clone(), cfg)
            .expect("valid simulation");
        let rep = simulate_repflow(&topo, &mut RepFlow::default(), arrivals, cfg)
            .expect("valid simulation");
        assert_bit_identical(&ecmp, &base, "ecmp vs aggregate");
        assert_bit_identical(&rep.run, &ecmp, "repflow vs ecmp");
        prop_assert_eq!(rep.stats.replicated_flows, 0usize);
        prop_assert_eq!(rep.stats.replica_bytes, Bytes::ZERO);
        for c in &rep.completions {
            prop_assert!(c.winner.is_none());
            prop_assert_eq!(
                c.fct.as_secs().to_bits(),
                c.base_fct.as_secs().to_bits()
            );
        }
    }

    /// A zero threshold replicates nothing: the run is bit-identical to
    /// ECMP even on a multi-plane fabric.
    #[test]
    fn zero_threshold_collapses_to_ecmp(
        raw in prop::collection::vec(
            (0u64..200, 0u32..16, 0u32..15, 1u64..400_000),
            1..20,
        )
    ) {
        let topo = two_plane_topo();
        let arrivals = scripted(&raw);
        let cfg = SimConfig::builder()
            .horizon(SimTime::from_millis(25.0))
            .build();
        let ecmp = simulate_ecmp(&topo, &mut Srpt::new(), arrivals.clone(), cfg)
            .expect("valid simulation");
        let rep = simulate_repflow(&topo, &mut RepFlow::new(0), arrivals, cfg)
            .expect("valid simulation");
        assert_bit_identical(&rep.run, &ecmp, "threshold 0 vs ecmp");
        prop_assert_eq!(rep.stats.replicated_flows, 0usize);
    }
}
