//! Integration test: the deterministic two-bottleneck starvation gadget
//! (continuous-time Fig. 1) separates SRPT from the backlog-aware
//! disciplines on the flow-level fabric — SRPT's long-flow queue grows
//! linearly at a load strictly inside the capacity region, the
//! backlog-aware schedulers bound it.

use basrpt::core::{FastBasrpt, MaxWeight, Scheduler, Srpt, ThresholdBacklogSrpt};
use basrpt::fabric::{simulate, FabricRun, FatTree, SimConfig};
use basrpt::types::SimTime;
use basrpt::workload::StarvationScript;

fn run_gadget(scheduler: &mut dyn Scheduler, horizon_secs: f64) -> FabricRun {
    let topo = FatTree::scaled(1, 4, 1).expect("valid");
    let script = StarvationScript::with_defaults(topo.edge_rate()).expect("valid gadget");
    simulate(
        &topo,
        scheduler,
        script,
        SimConfig::builder()
            .horizon(SimTime::from_secs(horizon_secs))
            .build(),
    )
    .expect("valid simulation")
}

/// SRPT loses `ρ_l − (1 − 2ρ_s)·L/(L−S)` ≈ 0.078 of capacity to
/// starvation: at 1.25 GB/s that is ~97 MB of A-port backlog per second.
#[test]
fn srpt_backlog_grows_linearly() {
    let run = run_gadget(&mut Srpt::new(), 1.5);
    let leftover_mb = run.leftover_bytes.as_f64() / 1e6;
    assert!(
        leftover_mb > 80.0,
        "SRPT should strand ~97 MB/s, got {leftover_mb} MB over 1.5 s"
    );
    // The trend is robustly positive.
    let slope = run.monitored_port_backlog.slope().expect("sampled");
    assert!(slope > 50e6, "slope {slope} B/s should be ~97 MB/s");
}

#[test]
fn backlog_aware_disciplines_bound_the_queue() {
    let schedulers: Vec<(Box<dyn Scheduler>, f64)> = vec![
        // weight V/N = 3.5 => stable long-VOQ level ~ w * (L - S) = 31.5 MB.
        (Box::new(FastBasrpt::new(14.0, 4)), 70.0),
        (Box::new(MaxWeight::new()), 40.0),
        (Box::new(ThresholdBacklogSrpt::new(15_000_000)), 40.0),
    ];
    for (mut sched, cap_mb) in schedulers {
        let run = run_gadget(sched.as_mut(), 1.5);
        let leftover_mb = run.leftover_bytes.as_f64() / 1e6;
        assert!(
            leftover_mb < cap_mb,
            "{} stranded {leftover_mb} MB (cap {cap_mb} MB)",
            sched.name()
        );
    }
}

#[test]
fn backlog_aware_throughput_beats_srpt() {
    let srpt = run_gadget(&mut Srpt::new(), 1.5);
    let basrpt = run_gadget(&mut FastBasrpt::new(14.0, 4), 1.5);
    assert!(
        basrpt.throughput.delivered() > srpt.throughput.delivered(),
        "backlog awareness must recover the starved capacity: {} vs {}",
        basrpt.throughput.delivered(),
        srpt.throughput.delivered()
    );
}

/// The shorts pay for the longs' progress, but only boundedly: under fast
/// BASRPT the short flows still complete and their mean FCT stays within a
/// modest multiple of their line-rate time (0.8 ms for 1 MB at 10 Gbps) —
/// at worst they wait out one protected long transfer (~8 ms).
#[test]
fn shorts_pay_a_bounded_price() {
    let run = run_gadget(&mut FastBasrpt::new(14.0, 4), 1.5);
    let shorts = run
        .fct
        .summary(basrpt::FlowClass::Query)
        .expect("shorts complete");
    assert!(shorts.count > 800, "most shorts complete");
    assert!(
        shorts.mean_secs < 0.030,
        "short mean FCT {} s should stay bounded",
        shorts.mean_secs
    );
}
