//! Differential tests for the indexed completion calendar.
//!
//! The production engine finds the next completion through
//! `dcn_fabric::CompletionCalendar`; `dcn_fabric::reference::simulate_scan`
//! runs the identical event loop with the seed engine's linear rescan.
//! Both paths share the exact epoch-based drain accounting, so every
//! observable — event streams, sampled series, FCT summaries, byte
//! conservation — must match **bit for bit** across seeds and disciplines.
//! This is the same pin-the-refactor technique PR 1 used for the
//! incremental scheduler and PR 2 for the probe redesign.

use basrpt::core::{FastBasrpt, Scheduler, Srpt};
use basrpt::fabric::{reference, simulate, FabricRun, FabricSim, FatTree, SimConfig};
use basrpt::metrics::TimeSeries;
use basrpt::probe::EventCounterProbe;
use basrpt::types::{FlowClass, SimTime};
use basrpt::workload::TrafficSpec;

fn fnv(h: &mut u64, bits: u64) {
    for b in bits.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn series_hash(h: &mut u64, ts: &TimeSeries) {
    fnv(h, ts.len() as u64);
    for (&t, &v) in ts.times().iter().zip(ts.values()) {
        fnv(h, t.to_bits());
        fnv(h, v.to_bits());
    }
}

fn fingerprint(run: &FabricRun) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    series_hash(&mut h, &run.total_backlog);
    series_hash(&mut h, &run.monitored_port_backlog);
    series_hash(&mut h, &run.max_port_backlog);
    series_hash(&mut h, &run.cumulative_delivered);
    h
}

fn run_pair(make: &dyn Fn() -> Box<dyn Scheduler>, seed: u64) -> (FabricRun, FabricRun) {
    let topo = FatTree::scaled(2, 4, 1).unwrap();
    let spec = TrafficSpec::scaled(2, 4, 0.9).unwrap();
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.1))
        .build();
    let calendar = simulate(
        &topo,
        make().as_mut(),
        spec.generator(seed).unwrap(),
        config,
    )
    .unwrap();
    let scan = reference::simulate_scan(
        &topo,
        make().as_mut(),
        spec.generator(seed).unwrap(),
        config,
    )
    .unwrap();
    (calendar, scan)
}

fn assert_bit_identical(cal: &FabricRun, scan: &FabricRun, label: &str) {
    assert_eq!(cal.arrivals, scan.arrivals, "{label}: arrivals");
    assert_eq!(cal.completions, scan.completions, "{label}: completions");
    assert_eq!(cal.reschedules, scan.reschedules, "{label}: reschedules");
    assert_eq!(
        cal.arrived_bytes, scan.arrived_bytes,
        "{label}: arrived bytes"
    );
    assert_eq!(
        cal.throughput.delivered(),
        scan.throughput.delivered(),
        "{label}: delivered bytes"
    );
    assert_eq!(
        cal.leftover_bytes, scan.leftover_bytes,
        "{label}: leftover bytes"
    );
    assert_eq!(
        cal.leftover_flows, scan.leftover_flows,
        "{label}: leftover flows"
    );
    assert_eq!(
        fingerprint(cal),
        fingerprint(scan),
        "{label}: sampled series fingerprint"
    );
    let (c, s) = (
        cal.fct.summary(FlowClass::Background).unwrap(),
        scan.fct.summary(FlowClass::Background).unwrap(),
    );
    assert_eq!(c.count, s.count, "{label}: FCT count");
    assert_eq!(
        c.mean_secs.to_bits(),
        s.mean_secs.to_bits(),
        "{label}: FCT mean must be bit-exact"
    );
    assert_eq!(
        c.p99_secs.to_bits(),
        s.p99_secs.to_bits(),
        "{label}: FCT p99 must be bit-exact"
    );
}

/// Seeds 1..=3 × {SRPT, FastBasrpt}: run summaries, series fingerprints,
/// and FCT summaries all bit-identical between the calendar engine and the
/// reference rescan loop.
#[test]
fn calendar_matches_reference_loop_across_seeds_and_disciplines() {
    type MakeScheduler = Box<dyn Fn() -> Box<dyn Scheduler>>;
    let disciplines: Vec<(&str, MakeScheduler)> = vec![
        ("srpt", Box::new(|| Box::new(Srpt::new()))),
        (
            "fast_basrpt",
            Box::new(|| Box::new(FastBasrpt::new(2500.0 * 8.0 / 144.0, 8))),
        ),
    ];
    for (name, make) in &disciplines {
        for seed in 1..=3u64 {
            let (cal, scan) = run_pair(make.as_ref(), seed);
            assert_bit_identical(&cal, &scan, &format!("{name}/seed{seed}"));
            assert!(cal.completions > 0, "{name}/seed{seed}: non-trivial run");
        }
    }
}

/// The full event streams match too: counting every arrival, drain,
/// completion, sample, and decision event on both paths gives the same
/// totals (fingerprints above already pin the sampled subset).
#[test]
fn calendar_and_reference_emit_identical_event_streams() {
    let topo = FatTree::scaled(2, 4, 1).unwrap();
    let spec = TrafficSpec::scaled(2, 4, 0.9).unwrap();
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.05))
        .build();
    let mut cal_counter = EventCounterProbe::new();
    let cal = FabricSim::new(&topo)
        .config(config)
        .scheduler(&mut Srpt::new())
        .workload(spec.generator(7).unwrap())
        .probe(&mut cal_counter)
        .run()
        .unwrap();
    let mut scan_counter = EventCounterProbe::new();
    let scan = reference::simulate_scan_probed(
        &topo,
        &mut Srpt::new(),
        spec.generator(7).unwrap(),
        config,
        &mut scan_counter,
    )
    .unwrap();
    assert_eq!(cal_counter.arrivals(), scan_counter.arrivals());
    assert_eq!(cal_counter.drains(), scan_counter.drains());
    assert_eq!(cal_counter.completions(), scan_counter.completions());
    assert_eq!(cal_counter.samples(), scan_counter.samples());
    assert_eq!(cal_counter.decisions(), scan_counter.decisions());
    assert_eq!(fingerprint(&cal), fingerprint(&scan));
}
