//! Integration test: the Theorem-1 tradeoffs, measured on the slotted
//! input-queued switch model where the theorem's quantities are defined.
//!
//! * the time-average penalty `ȳ` decreases toward the SRPT level as `V`
//!   grows (the `B'/V` gap shrinks);
//! * the time-average backlog grows with `V` (the `O(V)` queue bound);
//! * both averages respect the theorem's analytic bounds relative to the
//!   measured optimum.

use basrpt::core::{FastBasrpt, MaxWeight, Srpt};
use basrpt::switch::arrivals::BernoulliFlowArrivals;
use basrpt::switch::lyapunov::{b_prime, TheoremBounds};
use basrpt::switch::{run, RunConfig, SwitchRun};

const PORTS: u32 = 8;
const RHO: f64 = 0.8;
const MEAN_SIZE: u64 = 5;
const SLOTS: u64 = 60_000;

fn run_v(v: f64, seed: u64) -> SwitchRun {
    let mut arrivals = BernoulliFlowArrivals::uniform(PORTS, RHO, MEAN_SIZE, seed).unwrap();
    let mut sched = FastBasrpt::new(v, PORTS as usize);
    run(PORTS, &mut sched, &mut arrivals, RunConfig::new(SLOTS))
}

#[test]
fn penalty_decreases_and_backlog_increases_with_v() {
    let vs = [0.5, 4.0, 32.0, 256.0];
    let runs: Vec<SwitchRun> = vs.iter().map(|&v| run_v(v, 7)).collect();
    // Penalty (mean selected remaining size) must be non-increasing in V,
    // up to 10% stochastic tolerance between adjacent points.
    for pair in runs.windows(2) {
        assert!(
            pair[1].avg_penalty <= pair[0].avg_penalty * 1.10,
            "penalty should fall with V: {} -> {}",
            pair[0].avg_penalty,
            pair[1].avg_penalty
        );
    }
    // The extremes must order strictly.
    assert!(runs.last().unwrap().avg_penalty < runs[0].avg_penalty);
    assert!(runs.last().unwrap().avg_total_backlog > runs[0].avg_total_backlog);
}

#[test]
fn large_v_penalty_approaches_srpt() {
    let mut arrivals = BernoulliFlowArrivals::uniform(PORTS, RHO, MEAN_SIZE, 7).unwrap();
    let srpt = run(
        PORTS,
        &mut Srpt::new(),
        &mut arrivals,
        RunConfig::new(SLOTS),
    );
    let big_v = run_v(1e6, 7);
    let rel = (big_v.avg_penalty - srpt.avg_penalty).abs() / srpt.avg_penalty;
    assert!(
        rel < 0.05,
        "V=1e6 penalty {} should match SRPT {}",
        big_v.avg_penalty,
        srpt.avg_penalty
    );
}

#[test]
fn measured_averages_respect_the_analytic_bounds() {
    // Use MaxWeight's long-run penalty as a stand-in measurement context:
    // the theorem bounds BASRPT's penalty by y* + B'/V where y* is the
    // delay-optimal penalty. SRPT's measured penalty lower-bounds... we use
    // the measured SRPT penalty as a proxy for y* (it is delay-greedy), and
    // check the *inequality direction* the theorem guarantees.
    let mut arrivals = BernoulliFlowArrivals::uniform(PORTS, RHO, MEAN_SIZE, 11).unwrap();
    let srpt = run(
        PORTS,
        &mut Srpt::new(),
        &mut arrivals,
        RunConfig::new(SLOTS),
    );
    let y_star_proxy = srpt.avg_penalty;

    let reference = BernoulliFlowArrivals::uniform(PORTS, RHO, MEAN_SIZE, 11).unwrap();
    let b = reference.second_moment_bound();
    // The slack is per-VOQ against the uniform Birkhoff decomposition
    // (1/N - rho/(N-1)), not the per-port slack 1 - rho.
    let bounds = TheoremBounds::new(PORTS, b, reference.capacity_slack(), y_star_proxy, 1.0);

    for v in [8.0, 64.0, 512.0] {
        let r = run_v(v, 11);
        let penalty_bound = y_star_proxy + bounds.penalty_gap(v);
        assert!(
            r.avg_penalty <= penalty_bound * 1.05,
            "V={v}: penalty {} exceeds bound {}",
            r.avg_penalty,
            penalty_bound
        );
        let queue_bound = bounds.queue_bound(v);
        assert!(
            r.avg_total_backlog <= queue_bound,
            "V={v}: backlog {} exceeds bound {}",
            r.avg_total_backlog,
            queue_bound
        );
    }
}

#[test]
fn b_prime_matches_the_paper_formula() {
    // N(1 + N B)/2 with N=8, B=10: 8 * 81 / 2 = 324.
    assert_eq!(b_prime(8, 10.0), 324.0);
}

#[test]
fn v_zero_is_maxweight_on_the_switch() {
    let mut a1 = BernoulliFlowArrivals::uniform(PORTS, RHO, MEAN_SIZE, 3).unwrap();
    let mut a2 = BernoulliFlowArrivals::uniform(PORTS, RHO, MEAN_SIZE, 3).unwrap();
    let mut mw = MaxWeight::new();
    let mut fb = FastBasrpt::new(0.0, PORTS as usize);
    let r1 = run(PORTS, &mut mw, &mut a1, RunConfig::new(10_000));
    let r2 = run(PORTS, &mut fb, &mut a2, RunConfig::new(10_000));
    assert_eq!(r1.delivered_packets, r2.delivered_packets);
    assert_eq!(r1.completions.len(), r2.completions.len());
}
