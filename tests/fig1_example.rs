//! Integration test: the paper's Fig. 1 walk-through, driven end to end
//! through the facade crate (workload → slotted switch → schedulers).

use basrpt::core::{ExactBasrpt, FastBasrpt, Fifo, MaxWeight, Scheduler, Srpt};
use basrpt::switch::fig1;

#[test]
fn srpt_strands_a_packet_where_basrpt_does_not() {
    let srpt = fig1::run_fig1(&mut Srpt::new());
    assert_eq!(srpt.leftover_packets, 1);
    assert_eq!(srpt.delivered_packets, fig1::TOTAL_PACKETS - 1);

    let exact = fig1::run_fig1(&mut ExactBasrpt::new(0.8));
    assert_eq!(exact.leftover_packets, 0);
    assert_eq!(exact.delivered_packets, fig1::TOTAL_PACKETS);
}

#[test]
fn fig1b_srpt_schedule_matches_the_paper_slot_by_slot() {
    // SRPT: slot 1 = f2, slot 2 = f3, slots 3-6 = f1 (4 of 5 packets).
    let run = fig1::run_fig1(&mut Srpt::new());
    // The two 1-packet flows complete in their first eligible slot.
    let mut one_pkt: Vec<(u64, u64)> = run
        .completions
        .iter()
        .filter(|c| c.size == 1)
        .map(|c| (c.arrival.index(), c.completion.index()))
        .collect();
    one_pkt.sort_unstable();
    assert_eq!(one_pkt, vec![(1, 1), (2, 2)]);
    // f1 never completes.
    assert!(run.completions.iter().all(|c| c.size == 1));
}

#[test]
fn fig1c_backlog_aware_schedule_matches_the_paper() {
    let run = fig1::run_fig1(&mut ExactBasrpt::new(0.8));
    // f1 completes exactly at the end of the 6-slot horizon.
    let f1 = run.completions.iter().find(|c| c.size == 5).unwrap();
    assert_eq!(f1.fct_slots(), 6);
    // The two shorts share slot 2.
    let shorts: Vec<u64> = run
        .completions
        .iter()
        .filter(|c| c.size == 1)
        .map(|c| c.completion.index())
        .collect();
    assert_eq!(shorts, vec![2, 2]);
}

#[test]
fn every_stable_discipline_clears_the_example() {
    let disciplines: Vec<Box<dyn Scheduler>> = vec![
        Box::new(ExactBasrpt::new(0.8)),
        Box::new(FastBasrpt::new(0.8, 4)),
        Box::new(MaxWeight::new()),
        Box::new(Fifo::new()),
    ];
    for mut d in disciplines {
        let run = fig1::run_fig1(d.as_mut());
        assert_eq!(
            run.leftover_packets,
            0,
            "{} should clear all packets",
            d.name()
        );
    }
}

#[test]
fn exact_basrpt_outside_the_window_degenerates() {
    // V >= 1 makes slot 1 go to f2 (SRPT-like): the example then strands a
    // packet exactly as SRPT does.
    let run = fig1::run_fig1(&mut ExactBasrpt::new(50.0));
    assert_eq!(run.leftover_packets, 1);
}
