//! Differential tests for the probe redesign.
//!
//! The engine's sampling used to push directly into `TimeSeries`; it now
//! emits `SampleEvent`s to an internal `BacklogSampler` probe. These tests
//! pin that refactor three ways:
//!
//! 1. against golden FNV-1a fingerprints of the four sampled series (and
//!    the FCT mean, to the bit) captured from the pre-probe engine on the
//!    same workload — the redesign must be invisible in the output;
//! 2. an externally attached `BacklogSampler` must reproduce the
//!    `FabricRun` series exactly (same code path, same events);
//! 3. attaching probes must not perturb the simulation itself.

use basrpt::core::{FastBasrpt, Scheduler, Srpt};
use basrpt::fabric::{simulate, FabricRun, FabricSim, FatTree, SimConfig};
use basrpt::metrics::TimeSeries;
use basrpt::probe::{BacklogSampler, DriftProbe, EventCounterProbe, Fanout};
use basrpt::types::{FlowClass, SimTime};
use basrpt::workload::TrafficSpec;

fn fnv(h: &mut u64, bits: u64) {
    for b in bits.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn series_hash(h: &mut u64, ts: &TimeSeries) {
    fnv(h, ts.len() as u64);
    for (&t, &v) in ts.times().iter().zip(ts.values()) {
        fnv(h, t.to_bits());
        fnv(h, v.to_bits());
    }
}

fn fingerprint(run: &FabricRun) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    series_hash(&mut h, &run.total_backlog);
    series_hash(&mut h, &run.monitored_port_backlog);
    series_hash(&mut h, &run.max_port_backlog);
    series_hash(&mut h, &run.cumulative_delivered);
    h
}

fn golden_run(scheduler: &mut dyn Scheduler) -> FabricRun {
    let topo = FatTree::scaled(2, 4, 1).unwrap();
    let spec = TrafficSpec::scaled(2, 4, 0.9).unwrap();
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.2))
        .build();
    simulate(&topo, scheduler, spec.generator(42).unwrap(), config).unwrap()
}

struct Golden {
    hash: u64,
    samples: usize,
    arrivals: usize,
    completions: usize,
    reschedules: u64,
    fct_mean_bits: u64,
    last_total: f64,
    last_cum: f64,
}

fn check_against(run: &FabricRun, golden: &Golden) {
    assert_eq!(
        fingerprint(run),
        golden.hash,
        "sampled series diverged from the pre-probe engine"
    );
    assert_eq!(run.total_backlog.len(), golden.samples);
    assert_eq!(run.arrivals, golden.arrivals);
    assert_eq!(run.completions, golden.completions);
    assert_eq!(run.reschedules, golden.reschedules);
    let fct = run.fct.summary(FlowClass::Background).unwrap();
    assert_eq!(fct.mean_secs.to_bits(), golden.fct_mean_bits);
    assert_eq!(run.total_backlog.last_value(), Some(golden.last_total));
    assert_eq!(run.cumulative_delivered.last_value(), Some(golden.last_cum));
}

/// Golden fingerprint of a `simulate` run of SRPT on the scaled 8-host
/// fabric at load 0.9, seed 42, 0.2 s horizon.
///
/// Recaptured when the engine moved to exact epoch-based drain accounting
/// and the indexed completion calendar (drain amounts lost their per-event
/// `.round()` noise, so delivered-byte series and FCT means legitimately
/// shifted by a few bytes / ulps; arrival and completion counts were
/// unchanged). Originally captured from the pre-probe seed engine at
/// commit 124a4a9.
#[test]
fn srpt_output_is_bit_identical_to_pre_probe_engine() {
    let run = golden_run(&mut Srpt::new());
    check_against(
        &run,
        &Golden {
            hash: 0xd37476ef228dddf1,
            samples: 400,
            arrivals: 10006,
            completions: 9975,
            reschedules: 19916,
            fct_mean_bits: 0x3f6cbd4b14be2af0,
            last_total: 311233915.0,
            last_cum: 1467880296.0,
        },
    );
}

/// Same capture for FastBasrpt with the paper-equivalent V on 8 ports.
/// Completion count matches the pre-exact-accounting engine; the
/// reschedule count moved slightly (19649 → 19674) because exact
/// completion instants no longer coincide where rounding used to merge
/// them into one wakeup.
#[test]
fn fast_basrpt_output_is_bit_identical_to_pre_probe_engine() {
    let run = golden_run(&mut FastBasrpt::new(2500.0 * 8.0 / 144.0, 8));
    check_against(
        &run,
        &Golden {
            hash: 0xb9ba81518c23fe9b,
            samples: 400,
            arrivals: 10006,
            completions: 9966,
            reschedules: 19674,
            fct_mean_bits: 0x3f6c775987679cc1,
            last_total: 307254687.0,
            last_cum: 1471859524.0,
        },
    );
}

/// An externally attached `BacklogSampler` rides the same event stream as
/// the engine's internal one, so its series must equal the run's exactly.
#[test]
fn external_sampler_probe_reproduces_run_series() {
    let topo = FatTree::scaled(2, 4, 1).unwrap();
    let spec = TrafficSpec::scaled(2, 4, 0.9).unwrap();
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.05))
        .build();
    let mut sampler = BacklogSampler::new(config.monitored_port);
    let run = FabricSim::new(&topo)
        .config(config)
        .scheduler(&mut Srpt::new())
        .workload(spec.generator(42).unwrap())
        .probe(&mut sampler)
        .run()
        .unwrap();
    let series = sampler.into_series();
    assert_eq!(series.total_backlog, run.total_backlog);
    assert_eq!(series.monitored_port_backlog, run.monitored_port_backlog);
    assert_eq!(series.max_port_backlog, run.max_port_backlog);
    assert_eq!(series.cumulative_delivered, run.cumulative_delivered);
    assert!(
        run.total_backlog.len() > 10,
        "enough samples to be meaningful"
    );
}

/// Attaching observers (even several, with decision timing on) must not
/// change a single bit of the simulation output.
#[test]
fn probes_do_not_perturb_the_simulation() {
    let topo = FatTree::scaled(2, 4, 1).unwrap();
    let spec = TrafficSpec::scaled(2, 4, 0.9).unwrap();
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.05))
        .build();
    let bare = simulate(&topo, &mut Srpt::new(), spec.generator(42).unwrap(), config).unwrap();
    let mut counter = EventCounterProbe::new();
    let mut drift = DriftProbe::new();
    let observed = FabricSim::new(&topo)
        .config(config)
        .scheduler(&mut Srpt::new())
        .workload(spec.generator(42).unwrap())
        .probe(Fanout::new(&mut counter, &mut drift))
        .run()
        .unwrap();
    assert_eq!(fingerprint(&bare), fingerprint(&observed));
    assert_eq!(bare.completions, observed.completions);
    assert_eq!(bare.reschedules, observed.reschedules);
    // And the observers actually saw the run.
    assert_eq!(counter.decisions(), observed.reschedules);
    assert!(counter.decision_latency().count() > 0);
    assert_eq!(drift.lyapunov_series().len(), observed.total_backlog.len());
}
