//! Differential tests for the online (step-able) fabric engine.
//!
//! PR 8 extracted the monolithic `simulate` loop into the resumable
//! `OnlineFabric` state machine; the batch driver is now a thin wrapper
//! over it. Two contracts are pinned here, bit for bit, across seeds ×
//! {SRPT, fast BASRPT} × topologies (the paper's full-bisection fat-tree
//! and an oversubscribed k-ary fat-tree):
//!
//! 1. **Wrapper equivalence** — manually driving the online engine
//!    (`offer` / `step_before` / `finish`, including through backpressure
//!    retries) produces the exact `FabricRun` of batch `simulate`.
//! 2. **Snapshot/restore transparency** — suspending a run at an
//!    arbitrary point with `snapshot()`, rebuilding via `restore()` with a
//!    freshly constructed scheduler, and continuing produces runs, FCT
//!    bits, sampled-series fingerprints, and probe event streams identical
//!    to the uninterrupted run.
//!
//! A property test sweeps random scripted workloads and random snapshot
//! cut points (including cuts with a non-empty in-flight buffer).

mod support;

use basrpt::core::{FastBasrpt, Scheduler, Srpt};
use basrpt::fabric::{
    simulate, FabricRun, FatTree, KAryFatTree, OfferError, OnlineFabric, SimConfig, Topology,
};
use basrpt::types::{Bytes, FlowClass, FlowId, HostId, SimTime, Voq};
use basrpt::workload::{FlowArrival, TrafficSpec};
use support::conservation::assert_bit_identical;
use support::fingerprint::{fingerprint, fnv, FnvProbe};

type MakeScheduler = Box<dyn Fn(u32) -> Box<dyn Scheduler>>;

fn disciplines() -> Vec<(&'static str, MakeScheduler)> {
    vec![
        ("srpt", Box::new(|_| Box::new(Srpt::new()))),
        (
            "fast_basrpt",
            Box::new(|hosts| {
                Box::new(FastBasrpt::new(2500.0 * 8.0 / hosts as f64, hosts as usize))
            }),
        ),
    ]
}

/// The two topologies the matrix quantifies over: the scaled-down
/// full-bisection paper fabric and an oversubscribed k-ary fat-tree.
fn topologies() -> Vec<(&'static str, Box<dyn Topology>)> {
    let paper = FatTree::scaled(2, 4, 1).expect("valid scaled fat-tree");
    let kary = KAryFatTree::builder(4)
        .hosts_per_edge(2)
        .oversubscription(2.0)
        .build()
        .expect("valid k-ary parameters");
    vec![
        ("fat-tree-8", Box::new(paper)),
        ("kary-4-oversub", Box::new(kary)),
    ]
}

fn arrivals_for(topo: &dyn Topology, load: f64, seed: u64, horizon: SimTime) -> Vec<FlowArrival> {
    let spec = TrafficSpec::scaled(topo.num_racks(), topo.hosts_per_rack(), load)
        .expect("valid scaled spec");
    spec.generator(seed)
        .expect("valid generator")
        .take_while(|a| a.time < horizon)
        .collect()
}

fn config(horizon_secs: f64) -> SimConfig {
    SimConfig::builder()
        .horizon(SimTime::from_secs(horizon_secs))
        .build()
}

/// Drives the online engine exactly like an external event source would:
/// one offer per arrival, stepping strictly before each arrival instant,
/// through a deliberately tiny in-flight buffer so the backpressure path
/// is exercised (on `Backpressure` the driver steps to drain the buffer
/// and retries the offer).
fn drive_online(
    topo: &dyn Topology,
    scheduler: &mut dyn Scheduler,
    arrivals: &[FlowArrival],
    cfg: SimConfig,
    watermark: usize,
) -> FabricRun {
    let mut online = OnlineFabric::new(topo, scheduler, cfg).high_watermark(watermark);
    for arrival in arrivals {
        loop {
            online
                .step_before(arrival.time)
                .expect("valid buffered arrivals");
            if online.is_finished() {
                break;
            }
            match online.offer(*arrival) {
                Ok(_) => break,
                Err(OfferError::Backpressure { .. }) => continue,
                Err(e) => panic!("unexpected offer error: {e}"),
            }
        }
        if online.is_finished() {
            break;
        }
    }
    online.finish().expect("valid run")
}

/// Runs the workload with a suspension: offer/step to the `cut`-th
/// arrival, optionally step up to the next arrival instant (so the cut
/// can also land with a non-empty in-flight buffer when `step_at_cut` is
/// false), snapshot, restore with a *freshly constructed* scheduler, and
/// continue to the horizon.
fn interrupted_online(
    topo: &dyn Topology,
    make: &dyn Fn() -> Box<dyn Scheduler>,
    arrivals: &[FlowArrival],
    cfg: SimConfig,
    cut: usize,
    step_at_cut: bool,
) -> FabricRun {
    let cut = cut.min(arrivals.len());
    let mut first_sched = make();
    let mut online = OnlineFabric::new(topo, first_sched.as_mut(), cfg);
    for arrival in &arrivals[..cut] {
        online
            .step_before(arrival.time)
            .expect("valid buffered arrivals");
        if online.is_finished() {
            break;
        }
        online.offer(*arrival).expect("valid arrival");
    }
    if step_at_cut && !online.is_finished() {
        if let Some(next) = arrivals.get(cut) {
            online.step_before(next.time).expect("valid arrivals");
        } else {
            let midway =
                SimTime::from_secs((online.clock().as_secs() + cfg.horizon.as_secs()) * 0.5);
            online.step_until(midway).expect("valid arrivals");
        }
    }
    let snapshot = online.snapshot();
    drop(online);

    let mut second_sched = make();
    let mut resumed = OnlineFabric::restore(topo, second_sched.as_mut(), snapshot)
        .expect("snapshot of a live engine restores");
    for arrival in &arrivals[cut..] {
        resumed
            .step_before(arrival.time)
            .expect("valid buffered arrivals");
        if resumed.is_finished() {
            break;
        }
        resumed.offer(*arrival).expect("valid arrival");
    }
    resumed.finish().expect("valid run")
}

/// Contract 1: manual offer/step/finish driving — both unbounded and
/// through a tiny backpressured buffer — is bit-identical to batch
/// `simulate` across seeds × disciplines × topologies.
#[test]
fn online_driving_matches_batch_bit_for_bit() {
    let cfg = config(0.02);
    for (topo_name, topo) in &topologies() {
        for (name, make) in &disciplines() {
            for seed in 1..=3u64 {
                let arrivals = arrivals_for(topo.as_ref(), 0.9, seed, cfg.horizon);
                let batch = simulate(
                    topo.as_ref(),
                    make(topo.num_hosts()).as_mut(),
                    arrivals.clone(),
                    cfg,
                )
                .expect("valid batch run");
                for watermark in [usize::MAX, 4] {
                    let online = drive_online(
                        topo.as_ref(),
                        make(topo.num_hosts()).as_mut(),
                        &arrivals,
                        cfg,
                        watermark,
                    );
                    assert_bit_identical(
                        &online,
                        &batch,
                        &format!("{topo_name}/{name}/seed{seed}/watermark {watermark}"),
                    );
                }
            }
        }
    }
}

/// Contract 2: snapshot → restore → continue is bit-identical to the
/// uninterrupted run at every quartile cut point, with and without a
/// drained in-flight buffer at the cut.
#[test]
fn snapshot_restore_continue_matches_uninterrupted_bit_for_bit() {
    let cfg = config(0.02);
    for (topo_name, topo) in &topologies() {
        for (name, make) in &disciplines() {
            for seed in 1..=3u64 {
                let arrivals = arrivals_for(topo.as_ref(), 0.9, seed, cfg.horizon);
                let hosts = topo.num_hosts();
                let fresh: Box<dyn Fn() -> Box<dyn Scheduler>> = Box::new(|| make(hosts));
                let batch = simulate(topo.as_ref(), fresh().as_mut(), arrivals.clone(), cfg)
                    .expect("valid batch run");
                for cut in [
                    arrivals.len() / 4,
                    arrivals.len() / 2,
                    3 * arrivals.len() / 4,
                ] {
                    for step_at_cut in [false, true] {
                        let resumed = interrupted_online(
                            topo.as_ref(),
                            fresh.as_ref(),
                            &arrivals,
                            cfg,
                            cut,
                            step_at_cut,
                        );
                        assert_bit_identical(
                            &resumed,
                            &batch,
                            &format!(
                                "{topo_name}/{name}/seed{seed}/cut {cut} (stepped: {step_at_cut})"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The probe event stream of a suspended-then-restored run is the exact
/// continuation of the uninterrupted stream: hashing the pre-snapshot
/// events, seeding a fresh probe with that hash at restore, and hashing
/// the rest lands on the uninterrupted stream's hash.
#[test]
fn restored_probe_stream_continues_the_suspended_stream() {
    let topo = FatTree::scaled(2, 4, 1).expect("valid scaled fat-tree");
    let cfg = config(0.02);
    for seed in 1..=3u64 {
        let arrivals = arrivals_for(&topo, 0.9, seed, cfg.horizon);

        let mut probe = FnvProbe::new();
        let mut sched = Srpt::new();
        let mut whole = OnlineFabric::with_probe(&topo, &mut sched, cfg, &mut probe);
        for a in &arrivals {
            whole.step_before(a.time).expect("valid arrivals");
            if whole.is_finished() {
                break;
            }
            whole.offer(*a).expect("valid arrival");
        }
        whole.finish().expect("valid run");
        let uninterrupted_hash = probe.hash;

        let cut = arrivals.len() / 2;
        let mut pre = FnvProbe::new();
        let mut sched_a = Srpt::new();
        let mut first = OnlineFabric::with_probe(&topo, &mut sched_a, cfg, &mut pre);
        for a in &arrivals[..cut] {
            first.step_before(a.time).expect("valid arrivals");
            if first.is_finished() {
                break;
            }
            first.offer(*a).expect("valid arrival");
        }
        let snapshot = first.snapshot();
        drop(first);

        let mut post = FnvProbe::resumed_at(pre.hash);
        let mut sched_b = Srpt::new();
        let mut resumed =
            OnlineFabric::restore_with_probe(&topo, &mut sched_b, &mut post, snapshot)
                .expect("snapshot restores");
        for a in &arrivals[cut..] {
            resumed.step_before(a.time).expect("valid arrivals");
            if resumed.is_finished() {
                break;
            }
            resumed.offer(*a).expect("valid arrival");
        }
        resumed.finish().expect("valid run");

        assert_eq!(
            post.hash, uninterrupted_hash,
            "seed {seed}: restored event stream diverged from the uninterrupted stream"
        );
    }
}

/// Completions drained incrementally from the streaming engine are exactly
/// the batch run's completions: same count, and FCT sums match the
/// recorder bit for bit.
#[test]
fn streamed_completions_match_the_batch_recorders() {
    let topo = FatTree::scaled(2, 4, 1).expect("valid scaled fat-tree");
    let cfg = config(0.02);
    let arrivals = arrivals_for(&topo, 0.9, 7, cfg.horizon);
    let batch = simulate(&topo, &mut Srpt::new(), arrivals.clone(), cfg).expect("valid run");

    let mut sched = Srpt::new();
    let mut online = OnlineFabric::new(&topo, &mut sched, cfg);
    let mut streamed = Vec::new();
    for a in &arrivals {
        online.step_before(a.time).expect("valid arrivals");
        streamed.extend(online.drain_completions());
        if online.is_finished() {
            break;
        }
        online.offer(*a).expect("valid arrival");
    }
    // drain_completions before finish must not lose the tail.
    online.step_until(cfg.horizon).expect("valid arrivals");
    streamed.extend(online.drain_completions());
    let run = online.finish().expect("valid run");
    assert!(online_is_empty_tail(&run));

    assert_eq!(streamed.len(), batch.completions, "completion count");
    assert!(
        streamed.windows(2).all(|w| w[0].time <= w[1].time),
        "streamed completions are time-ordered"
    );
    let mut h_streamed = 0xcbf29ce484222325u64;
    for c in &streamed {
        fnv(&mut h_streamed, c.flow.raw());
        fnv(&mut h_streamed, c.time.as_secs().to_bits());
        fnv(&mut h_streamed, c.fct.as_secs().to_bits());
        fnv(&mut h_streamed, c.size.as_u64());
    }
    // Re-derive the same hash from a second batch-equivalent online run to
    // pin the stream itself (batch `simulate` has no completion log).
    let mut sched2 = Srpt::new();
    let mut online2 = OnlineFabric::new(&topo, &mut sched2, cfg);
    for a in &arrivals {
        online2.step_before(a.time).expect("valid arrivals");
        if online2.is_finished() {
            break;
        }
        online2.offer(*a).expect("valid arrival");
    }
    online2.step_until(cfg.horizon).expect("valid arrivals");
    let all_at_once = online2.drain_completions();
    let mut h_bulk = 0xcbf29ce484222325u64;
    for c in &all_at_once {
        fnv(&mut h_bulk, c.flow.raw());
        fnv(&mut h_bulk, c.time.as_secs().to_bits());
        fnv(&mut h_bulk, c.fct.as_secs().to_bits());
        fnv(&mut h_bulk, c.size.as_u64());
    }
    assert_eq!(
        h_streamed, h_bulk,
        "incremental drains must concatenate to the bulk drain"
    );
}

fn online_is_empty_tail(run: &FabricRun) -> bool {
    run.completions + run.leftover_flows == run.arrivals
}

mod random_workloads {
    //! Property test: snapshot/restore transparency on *scripted* random
    //! workloads with a random cut point — adversarial inter-arrival gaps,
    //! same-instant arrival bursts, and odd sizes, cut anywhere including
    //! with arrivals still in flight.

    use super::*;
    use proptest::prelude::*;

    /// Turns raw generated tuples into a valid, time-ordered arrival
    /// script on the 8-host scaled fabric (no self-loops, non-zero
    /// sizes). A zero `dt` produces same-instant arrival bursts.
    fn scripted(raw: &[(u64, u32, u32, u64)]) -> Vec<FlowArrival> {
        let mut t = SimTime::ZERO;
        raw.iter()
            .enumerate()
            .map(|(i, &(dt_us, s, d, size))| {
                t += SimTime::from_micros(dt_us as f64);
                let src = s % 8;
                let dst = (src + 1 + d % 7) % 8;
                FlowArrival {
                    id: FlowId::new(i as u64),
                    time: t,
                    voq: Voq::new(HostId::new(src), HostId::new(dst)),
                    size: Bytes::new(size),
                    class: FlowClass::Background,
                }
            })
            .collect()
    }

    proptest! {
        #[test]
        fn snapshot_restore_is_transparent_on_random_workloads(
            raw in prop::collection::vec(
                (0u64..400, 0u32..8, 0u32..7, 1u64..2_000_000),
                1..30,
            ),
            cut_frac in 0usize..=100,
            step_sel in 0u32..2,
        ) {
            let step_at_cut = step_sel == 1;
            let arrivals = scripted(&raw);
            let topo = FatTree::scaled(2, 4, 1).expect("valid");
            let cfg = SimConfig::builder()
                .horizon(SimTime::from_millis(20.0))
                .build();
            let make: Box<dyn Fn() -> Box<dyn Scheduler>> =
                Box::new(|| Box::new(FastBasrpt::new(2500.0, 8)));
            let batch = simulate(&topo, make().as_mut(), arrivals.clone(), cfg)
                .expect("valid batch run");
            let cut = cut_frac * arrivals.len() / 100;
            let resumed =
                interrupted_online(&topo, make.as_ref(), &arrivals, cfg, cut, step_at_cut);
            prop_assert_eq!(resumed.completions, batch.completions, "completions");
            prop_assert_eq!(resumed.reschedules, batch.reschedules, "reschedules");
            prop_assert_eq!(
                resumed.throughput.delivered(),
                batch.throughput.delivered(),
                "delivered bytes"
            );
            prop_assert_eq!(
                fingerprint(&resumed),
                fingerprint(&batch),
                "series fingerprint"
            );
            match (
                resumed.fct.summary(FlowClass::Background),
                batch.fct.summary(FlowClass::Background),
            ) {
                (Some(r), Some(b)) => {
                    prop_assert_eq!(r.count, b.count);
                    prop_assert_eq!(r.mean_secs.to_bits(), b.mean_secs.to_bits());
                    prop_assert_eq!(r.p99_secs.to_bits(), b.p99_secs.to_bits());
                }
                (None, None) => {}
                _ => return Err(TestCaseError::fail("FCT summary presence differs")),
            }
        }
    }
}
