//! Golden-file test pinning the JSONL trace schema.
//!
//! A fully scripted slotted-switch run is traced through [`JsonlProbe`]
//! and compared byte-for-byte against `tests/golden/trace.jsonl`. Any
//! change to the emitted field names, field order or number formatting
//! shows up as a diff against the checked-in golden — bump the golden
//! deliberately with
//!
//! ```sh
//! cargo test --test trace_golden -- --ignored bless_golden
//! ```
//!
//! Decision wall-latency is the one non-deterministic field, so the trace
//! is taken through a wrapper probe that opts out of decision timing —
//! the engine then passes `latency: None` and the `latency_ns` field is
//! omitted (its presence is covered by `trace_run` and the probe's unit
//! tests).

use basrpt::prelude::*;
use basrpt::probe::jsonl::{parse_line, JsonValue};
use basrpt::probe::{ArrivalEvent, CompletionEvent, DecisionEvent, DrainEvent, SampleEvent};
use basrpt::switch::{run_probed, ScriptedArrivals};
use std::io::Write;

const GOLDEN_PATH: &str = "tests/golden/trace.jsonl";
const GOLDEN: &str = include_str!("golden/trace.jsonl");

/// Delegates every event to the inner probe but declines decision
/// timing, keeping the trace deterministic.
struct NoTiming<P>(P);

impl<P: Probe> Probe for NoTiming<P> {
    fn wants_decision_timing(&self) -> bool {
        false
    }
    fn on_arrival(&mut self, event: &ArrivalEvent) {
        self.0.on_arrival(event);
    }
    fn on_drain(&mut self, event: &DrainEvent) {
        self.0.on_drain(event);
    }
    fn on_completion(&mut self, event: &CompletionEvent) {
        self.0.on_completion(event);
    }
    fn on_decision(&mut self, event: &DecisionEvent<'_>) {
        self.0.on_decision(event);
    }
    fn on_sample(&mut self, event: &SampleEvent<'_>) {
        self.0.on_sample(event);
    }
}

/// The scripted scenario: 2 ports, 3 flows (two at slot 0, one at
/// slot 2), SRPT, 8 slots, sampling every 2 slots. Fully deterministic.
fn scripted_trace() -> String {
    let mut arrivals = ScriptedArrivals::new(vec![
        (0, Voq::new(HostId::new(0), HostId::new(1)), 3),
        (0, Voq::new(HostId::new(1), HostId::new(0)), 2),
        (2, Voq::new(HostId::new(0), HostId::new(1)), 1),
    ]);
    let mut sched = Srpt::new();
    let mut probe = NoTiming(JsonlProbe::new(Vec::new()));
    let config = RunConfig {
        slots: 8,
        sample_every: 2,
    };
    run_probed(2, &mut sched, &mut arrivals, config, &mut probe);
    let bytes = probe.0.finish().expect("a Vec sink cannot fail");
    String::from_utf8(bytes).expect("the trace is UTF-8")
}

#[test]
fn trace_matches_golden_byte_for_byte() {
    assert_eq!(
        scripted_trace(),
        GOLDEN,
        "JSONL trace schema drifted from {GOLDEN_PATH}; if intentional, \
         re-bless with `cargo test --test trace_golden -- --ignored bless_golden`"
    );
}

#[test]
fn golden_lines_parse_with_expected_fields() {
    assert!(!GOLDEN.trim().is_empty(), "golden trace must not be empty");
    let mut kinds_seen = std::collections::BTreeSet::new();
    for line in GOLDEN.lines() {
        let fields = parse_line(line).expect("every golden line parses");
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        let kind = match &fields[0] {
            (k, JsonValue::String(s)) if k == "event" => s.clone(),
            other => panic!("first field must be a string \"event\", got {other:?}"),
        };
        assert!(
            matches!(&fields[1], (k, JsonValue::Number(t)) if k == "t" && t.is_finite()),
            "second field must be a finite number \"t\" in {line:?}"
        );
        let expected: &[&str] = match kind.as_str() {
            "arrival" => &["event", "t", "flow", "src", "dst", "size"],
            "drain" => &["event", "t", "flow", "src", "dst", "amount"],
            "completion" => &["event", "t", "flow", "src", "dst", "size", "fct"],
            // No latency_ns: the golden is traced without decision timing.
            "decision" => &["event", "t", "selected"],
            "sample" => &["event", "t", "backlog", "flows", "delivered"],
            other => panic!("unknown event kind {other:?} in golden trace"),
        };
        assert_eq!(names, expected, "field set drifted for {kind} in {line:?}");
        kinds_seen.insert(kind);
    }
    // The scenario is small but still exercises the whole taxonomy.
    assert_eq!(
        kinds_seen.into_iter().collect::<Vec<_>>(),
        ["arrival", "completion", "decision", "drain", "sample"]
    );
}

/// Regenerates the golden file. Ignored by default; run explicitly after
/// an intentional schema change and commit the diff.
#[test]
#[ignore = "writes tests/golden/trace.jsonl; run only to bless a schema change"]
fn bless_golden() {
    let trace = scripted_trace();
    let mut f = std::fs::File::create(GOLDEN_PATH).expect("golden path is writable");
    f.write_all(trace.as_bytes())
        .expect("golden write succeeds");
    println!("wrote {} lines to {GOLDEN_PATH}", trace.lines().count());
}
