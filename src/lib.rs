//! # basrpt — Backlog-Aware SRPT Flow Scheduling in Data Center Networks
//!
//! A from-scratch Rust reproduction of *"Backlog-Aware SRPT Flow Scheduling
//! in Data Center Networks"* (Zhang, Ren, Shu — ICDCS 2016): the BASRPT /
//! fast BASRPT schedulers, the SRPT discipline they repair, the slotted
//! input-queued switch model the theory is stated on, an event-driven
//! flow-level fat-tree fabric simulator, the measured traffic pattern, and
//! the metrics pipeline that regenerates every table and figure of the
//! paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof so applications can depend on a single name.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`types`] | `dcn-types` | ids and units (hosts, VOQs, bytes, rates, times) |
//! | [`core`] | `basrpt-core` | the schedulers ([`Srpt`], [`FastBasrpt`], [`ExactBasrpt`], …) |
//! | [`switch`] | `dcn-switch` | slotted switch model, Lyapunov tools, Fig. 1 scenario |
//! | [`fabric`] | `dcn-fabric` | event-driven flow-level fat-tree simulator |
//! | [`workload`] | `dcn-workload` | empirical CDFs and the paper's traffic pattern |
//! | [`metrics`] | `dcn-metrics` | FCT/throughput/stability analysis |
//! | [`probe`] | `dcn-probe` | event-level observability (the [`probe::Probe`] API) |
//!
//! The [`prelude`] re-exports the handful of names almost every program
//! needs, so examples start with a single `use basrpt::prelude::*;`.
//!
//! # Quickstart
//!
//! Compare SRPT against fast BASRPT on a small fabric at high load:
//!
//! ```
//! use basrpt::prelude::*;
//!
//! let topo = FatTree::scaled(2, 4, 1)?;
//! let spec = TrafficSpec::scaled(2, 4, 0.9)?;
//! let config = SimConfig::builder().horizon(SimTime::from_secs(0.2)).build();
//!
//! let srpt = simulate(&topo, &mut Srpt::new(), spec.generator(1)?, config)?;
//! let mut fb = FastBasrpt::new(2500.0, topo.num_hosts() as usize);
//! let basrpt = simulate(&topo, &mut fb, spec.generator(1)?, config)?;
//!
//! println!(
//!     "SRPT delivered {} vs fast BASRPT {}",
//!     srpt.throughput.delivered(),
//!     basrpt.throughput.delivered()
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The scheduling disciplines (re-export of `basrpt-core`).
pub mod core {
    pub use basrpt_core::*;
}

/// Shared identifiers and units (re-export of `dcn-types`).
pub mod types {
    pub use dcn_types::*;
}

/// The slotted input-queued switch model (re-export of `dcn-switch`).
pub mod switch {
    pub use dcn_switch::*;
}

/// The flow-level fabric simulator (re-export of `dcn-fabric`).
pub mod fabric {
    pub use dcn_fabric::*;
}

/// Workload generation (re-export of `dcn-workload`).
pub mod workload {
    pub use dcn_workload::*;
}

/// Metrics and analysis (re-export of `dcn-metrics`).
pub mod metrics {
    pub use dcn_metrics::*;
}

/// Event-level observability (re-export of `dcn-probe`).
pub mod probe {
    pub use dcn_probe::*;
}

pub use basrpt_core::{
    ExactBasrpt, FastBasrpt, Fifo, MaxWeight, PenaltyKind, RoundRobin, Scheduler, Srpt,
    ThresholdBacklogSrpt,
};
pub use dcn_types::{Bytes, FlowClass, FlowId, HostId, RackId, Rate, SimTime, Slot, Voq};

/// The names almost every program needs, importable in one line.
///
/// Covers the schedulers, both simulators' entry points (including the
/// sharded fabric engine), the topology layer ([`prelude::Topology`],
/// [`prelude::FatTree`], [`prelude::KAryFatTree`]), workload generation,
/// the common id/unit types, and the probe API. Anything more specialised
/// (metrics internals, Lyapunov tooling) stays behind its module path.
///
/// # Example
///
/// ```
/// use basrpt::prelude::*;
///
/// let topo = FatTree::scaled(2, 4, 1)?;
/// let spec = TrafficSpec::scaled(2, 4, 0.5)?;
/// let run = FabricSim::new(&topo)
///     .config(SimConfig::builder().horizon(SimTime::from_secs(0.05)).build())
///     .scheduler(&mut Srpt::new())
///     .workload(spec.generator(7)?)
///     .run()?;
/// assert!(run.completions > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub mod prelude {
    pub use basrpt_core::{
        ExactBasrpt, FastBasrpt, Fifo, FlowTable, MaxWeight, PenaltyKind, RepFlow, RoundRobin,
        Schedule, Scheduler, Srpt, ThresholdBacklogSrpt,
    };
    pub use dcn_fabric::{
        shards_from_env, simulate, simulate_ecmp, simulate_fair_share, simulate_fair_share_sharded,
        simulate_repflow, simulate_sharded, FabricRun, FabricSim, FabricSnapshot, FatTree,
        KAryFatTree, KAryFatTreeBuilder, OnlineFabric, RepFlowRun, RepFlowStats, ShardedRun,
        SimConfig, Topology, TopologyError,
    };
    pub use dcn_metrics::{StabilityReport, TimeSeries, TrendConfig};
    pub use dcn_probe::{
        BacklogSampler, DriftProbe, EventCounterProbe, Fanout, JsonlProbe, NoProbe, Probe,
    };
    pub use dcn_switch::{RunConfig, SlottedSwitch};
    pub use dcn_types::{Bytes, FlowClass, FlowId, HostId, RackId, Rate, SimTime, Slot, Voq};
    pub use dcn_workload::{FlowArrival, QueryScope, TrafficSpec};
}
