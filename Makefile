# Developer entry points. `make verify` is the tier-1 gate from ROADMAP.md.

.PHONY: verify lint test test-baselines bench-smoke trace-smoke daemon-smoke docs doc-tests clean

# Tier-1: release build + the root package's quiet test run, plus the
# trace round-trip smoke, a warning-free lint/format gate, and the doc
# gates (rustdoc warnings — including broken intra-doc links — fail the
# build, and every worked example must execute).
verify: trace-smoke lint docs doc-tests
	cargo build --release
	cargo test -q
	BASRPT_SHARDS=2 cargo test --release --test shard_differential
	$(MAKE) test-baselines

# Zero-warning clippy across every target, and formatting is canonical.
lint:
	cargo clippy --workspace --all-targets -- -D warnings
	cargo fmt --check

# The baseline-discipline invariants at release speed and a non-default
# shard count: the fair-share production-vs-naive differential matrix and
# the RepFlow dominance/degeneracy property suite.
test-baselines:
	BASRPT_SHARDS=4 cargo test --release --test fairshare_differential
	cargo test --release --test repflow_props

# The full workspace test suite (unit + integration + property + doctests).
test:
	cargo test --workspace

# One quick pass over the headline experiments at smoke scale, then the
# perf-regression gate: freshly recorded medians of the event_loop,
# delta_reschedule and settle_cost groups must stay within 1.5x of the
# committed results/bench.json (snapshotted before the benches rewrite it).
bench-smoke:
	@mkdir -p target
	cp results/bench.json target/bench-baseline.json
	BASRPT_SCALE=quick cargo bench -p basrpt-bench --bench fig2
	BASRPT_SCALE=quick cargo bench -p basrpt-bench --bench fig5
	BASRPT_SCALE=quick cargo bench -p basrpt-bench --bench table1
	BASRPT_SCALE=quick cargo bench -p basrpt-bench --bench sched_overhead
	BASRPT_SCALE=quick cargo bench -p basrpt-bench --bench fabric_scale
	BASRPT_SCALE=quick cargo bench -p basrpt-bench --bench daemon_throughput
	BASRPT_SCALE=quick cargo bench -p basrpt-bench --bench baseline_disciplines
	cargo run --release -p basrpt-bench --bin perf_gate -- target/bench-baseline.json

# Short traced simulation: streams every event to JSONL, re-parses each
# emitted line and exits non-zero on any schema violation.
trace-smoke:
	cargo run --release --example trace_run target/trace-smoke

# Pipes the sample flows file through the streaming daemon; `--validate`
# re-parses every emitted completion line with `dcn_probe::jsonl::parse_line`
# and the daemon exits non-zero on any schema violation or count mismatch.
daemon-smoke:
	BASRPT_HORIZON_MS=50 cargo run --release --example daemon -- \
		examples/daemon_flows.txt --validate > /dev/null

# API docs for the workspace crates; `-D warnings` turns every rustdoc
# warning (broken intra-doc links above all) into a hard failure.
docs:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Every rustdoc worked example across the workspace, compiled and run.
doc-tests:
	cargo test --workspace --doc -q

clean:
	cargo clean
