//! Offline stub of `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as inert
//! markers (no serializer backend such as `serde_json` is a dependency), so
//! these derives emit empty impls of the stub `serde` marker traits. The
//! parser is deliberately tiny: it scans the item's tokens for the
//! `struct`/`enum` keyword and takes the following identifier as the type
//! name. Generic types are rejected at compile time rather than silently
//! mis-expanded.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum` item's token stream.
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tree) = tokens.next() {
        // Skip attributes: `#` followed by a bracketed group.
        if let TokenTree::Punct(p) = &tree {
            if p.as_char() == '#' {
                let _ = tokens.next();
                continue;
            }
        }
        if let TokenTree::Ident(ident) = &tree {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.peek() {
                            if p.as_char() == '<' {
                                return Err(format!(
                                    "stub serde_derive cannot derive for generic type `{name}`"
                                ));
                            }
                        }
                        return Ok(name.to_string());
                    }
                    _ => return Err("expected a type name after `struct`/`enum`".into()),
                }
            }
        }
    }
    Err("no `struct` or `enum` found in derive input".into())
}

fn expand(input: TokenStream, template: fn(&str) -> String) -> TokenStream {
    match type_name(input) {
        Ok(name) => template(&name).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("valid"),
    }
}

/// Stub `#[derive(Serialize)]`: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Stub `#[derive(Deserialize)]`: emits `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
