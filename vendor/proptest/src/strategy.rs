//! Value-generation strategies (no shrinking).

use crate::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (as in real proptest, without
    /// shrinking through the map).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Generates exactly the given value (clone per case).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Weighted choice among boxed strategies producing one value type;
/// returned by the [`prop_oneof!`](crate::prop_oneof) macro.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

/// Builds a [`Union`]; used by the [`prop_oneof!`](crate::prop_oneof)
/// macro expansion. Panics if `options` is empty or all weights are zero.
pub fn union<T>(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
    let total: u64 = options.iter().map(|&(w, _)| w as u64).sum();
    assert!(total > 0, "prop_oneof! needs at least one positive weight");
    Union { options }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|&(w, _)| w as u64).sum();
        let mut pick = rng.0.gen_range(0..total);
        for (weight, strat) in &self.options {
            let weight = *weight as u64;
            if pick < weight {
                return strat.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is bounded by the total weight")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::Strategy;
    use crate::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.0.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng(StdRng::seed_from_u64(1))
    }

    #[test]
    fn ranges_and_tuples_compose() {
        let strat = (0u32..5, 1u64..=9).prop_map(|(a, b)| a as u64 + b);
        let mut r = rng();
        for _ in 0..100 {
            let v = strat.sample(&mut r);
            assert!((1..=13).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let strat = collection::vec(0u32..10, 2..5);
        let mut r = rng();
        for _ in 0..100 {
            let v = strat.sample(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }
}
