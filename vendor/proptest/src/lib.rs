//! Offline stub of `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] test macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`Strategy`] with `prop_map`, range and tuple strategies, and
//! `prop::collection::vec`. Cases are generated from a deterministic
//! per-test RNG; failures report the case number and the generated inputs'
//! debug rendering, but there is **no shrinking** — the first failing case
//! is reported as-is. Case count defaults to 256 and can be overridden
//! with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

pub mod strategy;

pub use strategy::Strategy;

/// The RNG handed to strategies while generating a test case.
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    fn for_test(name: &str, case: u64) -> TestRng {
        // Deterministic but distinct stream per (test, case).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Marks the case as failed with the given reason.
    pub fn fail<M: fmt::Display>(reason: M) -> TestCaseError {
        TestCaseError(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Number of cases to run per property (default 256, `PROPTEST_CASES`
/// overrides).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Runs `body` for [`cases`] generated cases, panicking on the first
/// failure. Used by the [`proptest!`] macro expansion; not public API in
/// real proptest.
pub fn run_cases<F>(test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let n = cases();
    for case in 0..n {
        let mut rng = TestRng::for_test(test_name, case);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest {test_name}: case {case}/{n} failed: {e} (offline stub: no shrinking)"
            );
        }
    }
}

/// Stub of proptest's test macro: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running [`cases`] random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Stub of proptest's weighted-choice macro: picks one of the listed
/// strategies per sample, proportionally to the (optional) `weight =>`
/// prefixes. All arms must produce the same value type; each arm is boxed.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors the `prop` module alias of the real prelude
    /// (`prop::collection::vec` and friends).
    pub mod prop {
        pub use crate::strategy::collection;
    }
}
