//! Offline stub of `rand` 0.8.
//!
//! Implements the exact API subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}` —
//! on top of a xoshiro256** generator seeded through SplitMix64. The
//! statistical quality is more than sufficient for the simulation
//! workloads; the *streams differ* from upstream rand's ChaCha-based
//! `StdRng`, so seeded runs recorded under the real crate will not
//! reproduce bit-for-bit under this stub (and vice versa). Each results
//! file in `results/` records which backend produced it.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that `Rng::gen` can produce (stand-in for sampling from the
/// `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over its "standard" domain;
    /// `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with SplitMix64
    /// seed expansion. (Upstream rand 0.8 uses ChaCha12 here; streams
    /// differ, determinism guarantees are the same.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
