//! Offline stub of `criterion` 0.5.
//!
//! Implements the subset the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_with_input`/`bench_function`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery. Each benchmark warms up for `warm_up_time`, then
//! takes `sample_size` samples within `measurement_time`; the report line
//! (`time: [min mean max]` over per-sample means) intentionally mimics
//! criterion's output so recorded results files keep their shape.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Summary statistics of one completed benchmark, captured by the
/// measurement loop for harnesses that want machine-readable output in
/// addition to the printed report (the real criterion writes
/// `target/criterion/**.json`; the stub hands the numbers back instead).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id, `group/function/parameter`.
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Number of samples behind the median.
    pub n: usize,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every benchmark result recorded since the last call (process
/// global, in completion order). A custom `main` can run its groups and
/// then persist these.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("results lock"))
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id carrying only a parameter (mirrors criterion).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Per-sample mean durations, filled by [`Bencher::iter`].
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Runs `routine` under the timing loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.config.sample_size.max(2);
        let sample_budget = self.config.measurement.as_secs_f64() / samples as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 30,
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.3} ns", secs * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration for subsequent benchmarks.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    /// Sets the measurement budget for subsequent benchmarks.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{id}", self.name);
        println!("Benchmarking {full}");
        let mut bencher = Bencher {
            config: &self.config,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(&full, &bencher.samples);
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.id.clone();
        self.run(&id, |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run(&id, |b| f(b));
        self
    }

    /// Ends the group (no-op in the stub; mirrors criterion's API).
    pub fn finish(self) {}
}

fn report(full_id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{full_id}: no samples collected");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let median = sorted[sorted.len() / 2];
    println!("{full_id}");
    println!(
        "                        time:   [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
    RESULTS.lock().expect("results lock").push(BenchResult {
        id: full_id.to_string(),
        median_ns: median * 1e9,
        n: sorted.len(),
    });
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            config: Config::default(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let config = Config::default();
        println!("Benchmarking {id}");
        let mut bencher = Bencher {
            config: &config,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(id, &bencher.samples);
        self
    }
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_produces_samples() {
        let config = Config {
            warm_up: Duration::from_millis(10),
            measurement: Duration::from_millis(50),
            sample_size: 5,
        };
        let mut b = Bencher {
            config: &config,
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("srpt", 100).id, "srpt/100");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn report_records_takeable_results() {
        // Drain anything left over from other tests in this process.
        let _ = take_results();
        report("grp/fn/1", &[3.0e-9, 1.0e-9, 2.0e-9]);
        let got = take_results();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, "grp/fn/1");
        assert_eq!(got[0].n, 3);
        assert!((got[0].median_ns - 2.0).abs() < 1e-9);
        assert!(take_results().is_empty(), "take drains the buffer");
    }
}
