//! Offline stub of `serde`.
//!
//! This workspace derives `Serialize`/`Deserialize` on its data types but
//! never links a serialization backend (`serde_json` & co. are not
//! dependencies), so in the offline build environment the traits are plain
//! markers and the derives emit empty impls. The API subset mirrors real
//! serde closely enough that swapping the workspace dependency back to
//! crates.io `serde = { version = "1", features = ["derive"] }` requires no
//! source changes.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

// A few impls for std types so containers of primitives stay derivable.
macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
